package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer records begin/end spans of DSspy's own pipeline — record, ship,
// drain, fold, analyze, report, server connections — into a bounded ring,
// exportable as Chrome trace-event JSON (chrome://tracing, Perfetto). It is
// the profiler profiling itself: when a run is slow, the trace says which
// stage ate the time, per goroutine lane.
//
// A nil *Tracer is valid and free: Begin returns an inert span, End is a
// no-op, so call sites need no conditionals. Span End takes one short mutex
// section; spans are expected at batch/stage/connection granularity, not
// per event.
type Tracer struct {
	// TIDFunc supplies the lane id for new spans (a goroutine id works
	// well). Set it before the first Begin; the default lanes everything on
	// tid 0. The trace package wires its dense goroutine ids in here so obs
	// needs no import of it.
	TIDFunc func() uint64

	start time.Time
	pid   int

	mu      sync.Mutex
	spans   []spanRec
	next    int
	wrapped bool
	total   uint64
}

type spanRec struct {
	name string
	cat  string
	ph   byte // 'X' complete, 'i' instant
	tid  uint64
	ts   int64 // ns since tracer start
	dur  int64
	args []string // alternating key/value
}

// NewTracer returns a tracer whose ring holds up to capSpans spans; older
// spans are overwritten (and counted) once the ring wraps.
func NewTracer(capSpans int) *Tracer {
	if capSpans < 16 {
		capSpans = 16
	}
	return &Tracer{
		start: time.Now(),
		pid:   os.Getpid(),
		spans: make([]spanRec, 0, capSpans),
	}
}

// Span is an open interval handle returned by Begin. The zero Span (from a
// nil tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   uint64
	start time.Time
}

// Begin opens a span. Safe on a nil tracer.
func (t *Tracer) Begin(name, cat string) Span {
	if t == nil {
		return Span{}
	}
	var tid uint64
	if t.TIDFunc != nil {
		tid = t.TIDFunc()
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: time.Now()}
}

// End closes the span, attaching optional alternating key/value args.
func (sp Span) End(args ...string) {
	if sp.t == nil {
		return
	}
	end := time.Now()
	sp.t.push(spanRec{
		name: sp.name,
		cat:  sp.cat,
		ph:   'X',
		tid:  sp.tid,
		ts:   sp.start.Sub(sp.t.start).Nanoseconds(),
		dur:  end.Sub(sp.start).Nanoseconds(),
		args: args,
	})
}

// Instant records a zero-duration marker event.
func (t *Tracer) Instant(name, cat string, args ...string) {
	if t == nil {
		return
	}
	var tid uint64
	if t.TIDFunc != nil {
		tid = t.TIDFunc()
	}
	t.push(spanRec{
		name: name,
		cat:  cat,
		ph:   'i',
		tid:  tid,
		ts:   time.Since(t.start).Nanoseconds(),
		args: args,
	})
}

func (t *Tracer) push(r spanRec) {
	t.mu.Lock()
	t.total++
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, r)
	} else {
		t.spans[t.next] = r
		t.next++
		if t.next == len(t.spans) {
			t.next = 0
		}
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Len returns the number of spans currently held in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Total returns the number of spans ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.spans))
}

// ordered returns the ring oldest-first.
func (t *Tracer) ordered() []spanRec {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]spanRec, 0, len(t.spans))
	if t.wrapped {
		out = append(out, t.spans[t.next:]...)
	}
	out = append(out, t.spans[:t.next]...)
	if !t.wrapped {
		out = append(out, t.spans[t.next:]...)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format's JSON array
// (the "JSON Object Format" flavor, which Perfetto and chrome://tracing
// both load). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the ring as Chrome trace-event JSON. The output
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.ordered()
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)+1),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  t.pid,
		Args: map[string]string{"name": "dsspy"},
	})
	for _, r := range spans {
		ev := chromeEvent{
			Name: r.name,
			Cat:  r.cat,
			Ph:   string(r.ph),
			Ts:   float64(r.ts) / 1e3,
			Pid:  t.pid,
			Tid:  r.tid,
		}
		if r.ph == 'X' {
			ev.Dur = float64(r.dur) / 1e3
		}
		if r.ph == 'i' {
			ev.S = "t" // thread-scoped instant
		}
		if len(r.args) >= 2 {
			ev.Args = make(map[string]string, len(r.args)/2)
			for i := 0; i+1 < len(r.args); i += 2 {
				ev.Args[r.args[i]] = r.args[i+1]
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteMetrics exports the tracer's own accounting.
func (t *Tracer) WriteMetrics(w *PromWriter) {
	if t == nil {
		return
	}
	w.Counter("dsspy_trace_spans_total", "Spans recorded by the self-tracer.", float64(t.Total()))
	w.Counter("dsspy_trace_spans_dropped_total", "Spans overwritten by the bounded ring.", float64(t.Dropped()))
	w.Gauge("dsspy_trace_ring_spans", "Spans currently held in the ring.", float64(t.Len()))
}
