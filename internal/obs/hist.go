// Package obs is DSspy's observability plane: lock-cheap log-bucketed
// histograms, a hand-rolled Prometheus text exposition writer, a bounded
// span tracer exportable as Chrome trace-event JSON, periodic occupancy
// sampling, and the HTTP surface (/metrics, /healthz, /statusz,
// /debug/pprof) that makes a long profiling run inspectable while it runs.
//
// The package is stdlib-only and imports nothing else from this module, so
// every layer of the pipeline (trace, metrics, core, cmd) can depend on it
// without cycles. All hot-path types (Histogram, Tracer spans) are safe for
// concurrent use and designed to perturb the profiled workload as little as
// possible — DSspy measures programs, so it must be able to account for its
// own cost.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values below 2^histSubBits ns get exact
// single-unit buckets; above that, each power-of-two octave is split into
// 2^histSubBits linear sub-buckets, bounding the relative quantile error at
// 1/2^histSubBits ≈ 6 %. With 4 sub-bits the whole int64 nanosecond range
// (±146 years) fits in 960 buckets — 7.7 KiB of counters per histogram.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histMaxExp  = 62
	histBuckets = histSub + (histMaxExp-histSubBits+1)*histSub
)

// Histogram is a concurrent log-bucketed histogram over non-negative int64
// values (typically nanoseconds, sometimes queue depths). Observe is a few
// atomic adds — no locks, no allocation — so it can sit on producer hot
// paths. Exact count, sum, min and max are tracked alongside the buckets, so
// means and extremes are precise while quantiles are bucket-interpolated.
//
// Use NewHistogram (or Init on an embedded value) before observing: the min
// tracker needs its sentinel.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an initialized histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.Init()
	return h
}

// Init prepares an embedded zero-value histogram. It must be called before
// the first Observe and must not race with it.
func (h *Histogram) Init() {
	h.min.Store(math.MaxInt64)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValue records one raw value. Negative values are clamped to zero.
func (h *Histogram) ObserveValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// histIndex maps a value to its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // histSubBits <= exp <= histMaxExp for int64 input
	k := (v - 1<<exp) >> (exp - histSubBits)
	return histSub + (exp-histSubBits)*histSub + int(k)
}

// bucketBounds returns the inclusive lower bound and width of bucket i.
func bucketBounds(i int) (lower, width int64) {
	if i < histSub {
		return int64(i), 1
	}
	exp := histSubBits + (i-histSub)/histSub
	k := (i - histSub) % histSub
	width = 1 << (exp - histSubBits)
	return 1<<exp + int64(k)*width, width
}

// Snapshot returns a consistent-enough copy for reporting. Concurrent
// observers may land between the bucket copies and the totals, so the
// aggregate counters are re-derived from the copied buckets to keep the
// snapshot internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Min: h.min.Load(),
		Max: h.max.Load(),
		Sum: h.sum.Load(),
	}
	last := -1
	var counts [histBuckets]uint64
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			counts[i] = c
			s.Count += c
			last = i
		}
	}
	if last >= 0 {
		s.Counts = make([]uint64, last+1)
		copy(s.Counts, counts[:last+1])
	}
	if s.Min == math.MaxInt64 {
		s.Min = 0
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram: per-bucket counts
// (trailing zero buckets trimmed) plus the exact aggregate figures.
type HistSnapshot struct {
	Counts []uint64
	Count  uint64
	Sum    int64
	Min    int64
	Max    int64
}

// Mean returns the exact average observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) with linear interpolation
// inside the landing bucket, clamped to the exactly-tracked min and max so
// p=0 and p=1 are precise and interpolation never invents values outside the
// observed range.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p <= 0 {
		return float64(s.Min)
	}
	if p >= 1 {
		return float64(s.Max)
	}
	target := p * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			lower, width := bucketBounds(i)
			frac := (target - cum) / float64(c)
			v := float64(lower) + frac*float64(width)
			return min(max(v, float64(s.Min)), float64(s.Max))
		}
		cum += float64(c)
	}
	return float64(s.Max)
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (s HistSnapshot) QuantileDuration(p float64) time.Duration {
	return time.Duration(s.Quantile(p))
}

// MeanDuration is Mean for nanosecond-valued histograms.
func (s HistSnapshot) MeanDuration() time.Duration {
	return time.Duration(s.Mean())
}

// Merge adds o's observations into s (bucket-wise; min/max/sum/count exact).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if len(o.Counts) > len(s.Counts) {
		grown := make([]uint64, len(o.Counts))
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Buckets returns the nonzero buckets as (exclusive upper bound, count)
// pairs in ascending order — the raw material for Prometheus exposition.
func (s HistSnapshot) Buckets() []Bucket {
	var out []Bucket
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lower, width := bucketBounds(i)
		out = append(out, Bucket{Upper: lower + width, Count: c})
	}
	return out
}

// Bucket is one nonzero histogram bucket: Count observations below Upper.
type Bucket struct {
	Upper int64
	Count uint64
}
