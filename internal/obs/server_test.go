package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	s := NewServer()
	var scraped atomic.Int64
	s.AddSource(MetricSourceFunc(func(w *PromWriter) {
		scraped.Add(1)
		w.Counter("dsspy_test_total", "Test counter.", 5)
	}))
	s.SetStatus(func() *Status {
		return &Status{
			Title: "dsspy — test run",
			Sections: []StatusSection{
				{Title: "Run", KV: []StatusKV{{"app", "Mandelbrot"}, {"events", "1234"}}},
				{Title: "Shards", Table: &StatusTable{
					Header: []string{"shard", "events"},
					Rows:   [][]string{{"0", "600"}, {"1", "634"}},
				}},
			},
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"dsspy_obs_uptime_seconds",
		"dsspy_obs_scrapes_total",
		"# TYPE dsspy_test_total counter",
		"dsspy_test_total 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if scraped.Load() != 1 {
		t.Fatalf("source scraped %d times, want 1", scraped.Load())
	}

	code, body = get(t, ts, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	for _, want := range []string{"dsspy — test run", "Mandelbrot", "<th>shard</th>", "<td>634</td>", "fetch('/statusz?frag=1')"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q", want)
		}
	}
	// The fragment endpoint returns sections without the page chrome.
	_, frag := get(t, ts, "/statusz?frag=1")
	if strings.Contains(frag, "<html>") || !strings.Contains(frag, "Mandelbrot") {
		t.Errorf("fragment wrong:\n%s", frag)
	}

	if code, body := get(t, ts, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServerStartStop(t *testing.T) {
	s := NewServer()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	s.Stop()
	s.Stop() // idempotent
}

func TestOccupancySampler(t *testing.T) {
	var depth atomic.Int64
	depth.Store(3)
	s := StartOccupancySampler(time.Millisecond,
		Probe{Name: "queue", Fn: depth.Load},
		Probe{Name: "buffer", Fn: func() int64 { return 10 }},
	)
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if s.Samples() < 5 {
		t.Fatalf("samples = %d, want ≥ 5", s.Samples())
	}
	q := s.Hist(0)
	if q.Count == 0 || q.Min != 3 || q.Max != 3 {
		t.Fatalf("queue hist = %+v", q)
	}
	b, ok := s.HistByName("buffer")
	if !ok || b.Max != 10 {
		t.Fatalf("buffer hist = %+v ok=%v", b, ok)
	}
	if _, ok := s.HistByName("nope"); ok {
		t.Fatal("unknown probe resolved")
	}
	var nilS *OccupancySampler
	nilS.Stop()
	if nilS.Samples() != 0 || nilS.Interval() != 0 {
		t.Fatal("nil sampler should be inert")
	}
}
