package obs

import (
	"strings"
	"testing"
)

// TestPromGolden pins the exposition format byte-for-byte: Prometheus'
// text parser is strict about HELP/TYPE placement, label quoting and the
// histogram family shape, so any drift here is a real compatibility bug.
func TestPromGolden(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{5, 5, 17, 1000} {
		h.ObserveValue(v)
	}

	var sb strings.Builder
	w := NewPromWriter(&sb)
	w.Counter("dsspy_events_total", "Events recorded.", 42, "shard", "0")
	w.Counter("dsspy_events_total", "Events recorded.", 13, "shard", "1")
	w.Gauge("dsspy_queue_depth", "Current queue depth.", 7)
	w.Histogram("dsspy_record_seconds", "Record latency.", h.Snapshot(), 1e9)
	w.Gauge("dsspy_weird_label", "Escaping.", 1, "name", "a\"b\\c\nd")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	const want = `# HELP dsspy_events_total Events recorded.
# TYPE dsspy_events_total counter
dsspy_events_total{shard="0"} 42
dsspy_events_total{shard="1"} 13
# HELP dsspy_queue_depth Current queue depth.
# TYPE dsspy_queue_depth gauge
dsspy_queue_depth 7
# HELP dsspy_record_seconds Record latency.
# TYPE dsspy_record_seconds histogram
dsspy_record_seconds_bucket{le="6e-09"} 2
dsspy_record_seconds_bucket{le="1.8e-08"} 3
dsspy_record_seconds_bucket{le="1.024e-06"} 4
dsspy_record_seconds_bucket{le="+Inf"} 4
dsspy_record_seconds_sum 1.027e-06
dsspy_record_seconds_count 4
# HELP dsspy_weird_label Escaping.
# TYPE dsspy_weird_label gauge
dsspy_weird_label{name="a\"b\\c\nd"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPromHistogramEmpty(t *testing.T) {
	var sb strings.Builder
	w := NewPromWriter(&sb)
	w.Histogram("dsspy_empty_seconds", "Never observed.", HistSnapshot{}, 1e9)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`dsspy_empty_seconds_bucket{le="+Inf"} 0`,
		"dsspy_empty_seconds_sum 0",
		"dsspy_empty_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty histogram missing %q:\n%s", want, out)
		}
	}
}
