package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4), hand-rolled so the module stays dependency-free. Errors
// are sticky: the first write failure is remembered and later calls are
// no-ops, so callers check Err once at the end.
//
// HELP/TYPE headers are emitted the first time a metric family is written;
// repeated writes of the same family (e.g. one line per shard) share one
// header, as the format requires.
type PromWriter struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewPromWriter returns a writer targeting w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, seen: make(map[string]bool)}
}

// Err returns the first write error, or nil.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelString renders {k="v",...} from alternating key/value pairs, escaping
// backslash, double quote and newline in values. Empty pairs render nothing.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		sb.WriteString(v)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter writes one sample of a counter family. labels are alternating
// key/value pairs.
func (p *PromWriter) Counter(name, help string, v float64, labels ...string) {
	p.header(name, help, "counter")
	p.printf("%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Gauge writes one sample of a gauge family.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	p.printf("%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Histogram writes one histogram family from a snapshot. unit divides the
// histogram's raw int64 values into the exported unit — 1e9 for
// nanosecond-valued histograms exported in seconds, 1 for unit-less values
// such as queue depths. Bucket bounds are the histogram's own nonzero bucket
// uppers; cumulative counts and the +Inf bucket follow the format's rules.
func (p *PromWriter) Histogram(name, help string, s HistSnapshot, unit float64, labels ...string) {
	p.header(name, help, "histogram")
	var cum uint64
	for _, b := range s.Buckets() {
		cum += b.Count
		le := append(append([]string{}, labels...), "le", formatFloat(float64(b.Upper)/unit))
		p.printf("%s_bucket%s %d\n", name, labelString(le), cum)
	}
	inf := append(append([]string{}, labels...), "le", "+Inf")
	p.printf("%s_bucket%s %d\n", name, labelString(inf), s.Count)
	p.printf("%s_sum%s %s\n", name, labelString(labels), formatFloat(float64(s.Sum)/unit))
	p.printf("%s_count%s %d\n", name, labelString(labels), s.Count)
}

// MetricSource is anything that can contribute families to a /metrics
// scrape. Implementations live next to the state they export: collectors,
// pipeline clocks, the streaming analyzer, recorders.
type MetricSource interface {
	WriteMetrics(w *PromWriter)
}

// MetricSourceFunc adapts a function to MetricSource.
type MetricSourceFunc func(w *PromWriter)

// WriteMetrics calls f.
func (f MetricSourceFunc) WriteMetrics(w *PromWriter) { f(w) }
