package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// OccupancySampler periodically evaluates a set of probes — queue depths,
// buffer fills, active connections — and folds each reading into a
// histogram. Sampling is how the pipeline answers "how full were the queues
// while it ran" without touching the hot path at all: the producer never
// sees the sampler, and the cost is one goroutine waking interval-ly.
//
// A nil sampler is valid and inert, so components can make sampling
// strictly opt-in.
type OccupancySampler struct {
	interval time.Duration
	probes   []Probe
	hists    []*Histogram
	samples  atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Probe is one sampled quantity.
type Probe struct {
	Name string
	Fn   func() int64
}

// DefaultSampleInterval is the occupancy sampling period components use
// when the caller asks for sampling without naming a rate.
const DefaultSampleInterval = 10 * time.Millisecond

// StartOccupancySampler launches a sampler over the probes. interval <= 0
// uses DefaultSampleInterval. Stop it when the sampled component closes.
func StartOccupancySampler(interval time.Duration, probes ...Probe) *OccupancySampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &OccupancySampler{
		interval: interval,
		probes:   probes,
		hists:    make([]*Histogram, len(probes)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range s.hists {
		s.hists[i] = NewHistogram()
	}
	go s.loop()
	return s
}

func (s *OccupancySampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for i, p := range s.probes {
				s.hists[i].ObserveValue(p.Fn())
			}
			s.samples.Add(1)
		}
	}
}

// Stop halts sampling and waits for the loop to exit. Idempotent; safe on a
// nil sampler.
func (s *OccupancySampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Samples returns the number of sampling rounds completed. Zero on nil.
func (s *OccupancySampler) Samples() uint64 {
	if s == nil {
		return 0
	}
	return s.samples.Load()
}

// Interval returns the sampling period, or 0 on a nil sampler.
func (s *OccupancySampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Hist returns the snapshot of probe i's histogram; the zero snapshot on a
// nil sampler or out-of-range index.
func (s *OccupancySampler) Hist(i int) HistSnapshot {
	if s == nil || i < 0 || i >= len(s.hists) {
		return HistSnapshot{}
	}
	return s.hists[i].Snapshot()
}

// HistByName returns the snapshot of the named probe's histogram.
func (s *OccupancySampler) HistByName(name string) (HistSnapshot, bool) {
	if s == nil {
		return HistSnapshot{}, false
	}
	for i, p := range s.probes {
		if p.Name == name {
			return s.hists[i].Snapshot(), true
		}
	}
	return HistSnapshot{}, false
}
