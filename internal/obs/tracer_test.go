package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndExport(t *testing.T) {
	tr := NewTracer(64)
	tr.TIDFunc = func() uint64 { return 7 }

	sp := tr.Begin("fold", "stream")
	time.Sleep(time.Millisecond)
	sp.End("events", "128")
	tr.Instant("reconnect", "ship", "attempt", "2")

	if tr.Total() != 2 || tr.Len() != 2 || tr.Dropped() != 0 {
		t.Fatalf("total/len/dropped = %d/%d/%d", tr.Total(), tr.Len(), tr.Dropped())
	}

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) != 3 { // metadata + span + instant
		t.Fatalf("events = %d, want 3", len(out.TraceEvents))
	}
	span := out.TraceEvents[1]
	if span.Name != "fold" || span.Cat != "stream" || span.Ph != "X" || span.Tid != 7 {
		t.Fatalf("span = %+v", span)
	}
	if span.Dur < 900 { // ≥ 0.9ms in µs
		t.Fatalf("span dur = %v µs, want ≥ 900", span.Dur)
	}
	if span.Args["events"] != "128" {
		t.Fatalf("span args = %v", span.Args)
	}
	inst := out.TraceEvents[2]
	if inst.Ph != "i" || inst.Args["attempt"] != "2" {
		t.Fatalf("instant = %+v", inst)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 100; i++ {
		tr.Begin("s", "c").End()
	}
	if tr.Len() != 16 {
		t.Fatalf("ring len = %d, want 16", tr.Len())
	}
	if tr.Total() != 100 || tr.Dropped() != 84 {
		t.Fatalf("total/dropped = %d/%d", tr.Total(), tr.Dropped())
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatal("wrapped export is not valid JSON")
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y")
	sp.End()
	tr.Instant("x", "y")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should account nothing")
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Begin("work", "test").End()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", tr.Total())
	}
}
