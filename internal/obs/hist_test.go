package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBucketBoundaries(t *testing.T) {
	// The first 16 values get exact buckets.
	for v := uint64(0); v < histSub; v++ {
		if got := histIndex(v); got != int(v) {
			t.Fatalf("histIndex(%d) = %d, want %d", v, got, v)
		}
		lower, width := bucketBounds(int(v))
		if lower != int64(v) || width != 1 {
			t.Fatalf("bucketBounds(%d) = (%d,%d), want (%d,1)", v, lower, width, v)
		}
	}
	// Every bucket index must invert: a value inside [lower, lower+width)
	// lands in exactly that bucket, and bounds tile the axis with no gaps.
	prevUpper := int64(0)
	for i := 0; i < histBuckets; i++ {
		lower, width := bucketBounds(i)
		if lower != prevUpper {
			t.Fatalf("bucket %d: lower %d, want %d (gap or overlap)", i, lower, prevUpper)
		}
		prevUpper = lower + width
		for _, v := range []int64{lower, lower + width - 1} {
			if v < 0 { // overflow at the top bucket
				continue
			}
			if got := histIndex(uint64(v)); got != i {
				t.Fatalf("histIndex(%d) = %d, want bucket %d [%d,%d)", v, got, i, lower, lower+width)
			}
		}
	}
	// The geometry covers the whole int64 range.
	if got := histIndex(uint64(math.MaxInt64)); got != histBuckets-1 {
		t.Fatalf("histIndex(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
}

func TestHistRelativeError(t *testing.T) {
	// Sub-bucket width bounds the relative error: for any value ≥ 16 the
	// bucket width is lower/16 ≤ value/16.
	for _, v := range []int64{17, 100, 999, 12345, 1 << 30, 1<<40 + 12345} {
		i := histIndex(uint64(v))
		lower, width := bucketBounds(i)
		if v < lower || v >= lower+width {
			t.Fatalf("value %d outside its bucket [%d,%d)", v, lower, lower+width)
		}
		if float64(width) > float64(v)/float64(histSub)*2 {
			t.Fatalf("bucket width %d too coarse for value %d", width, v)
		}
	}
}

func TestHistQuantileEdges(t *testing.T) {
	h := NewHistogram()
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	h.ObserveValue(1000)
	s := h.Snapshot()
	// A single observation: every quantile must return a value from its
	// bucket, and p=0/p=1 are exact.
	if s.Quantile(0) != 1000 || s.Quantile(1) != 1000 {
		t.Fatalf("p0/p1 of single obs = %v/%v, want 1000", s.Quantile(0), s.Quantile(1))
	}
	if q := s.Quantile(0.5); q < 960 || q > 1024 {
		t.Fatalf("p50 of single obs at 1000 = %v, want within its bucket", q)
	}

	// Uniform 1..1000: quantiles within bucket resolution (~6%).
	h2 := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h2.ObserveValue(v)
	}
	s2 := h2.Snapshot()
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := s2.Quantile(tc.p)
		if math.Abs(got-tc.want)/tc.want > 0.08 {
			t.Errorf("p%g = %v, want ≈%v", tc.p*100, got, tc.want)
		}
	}
	// Quantiles never leave the observed range.
	if s2.Quantile(0.0001) < 1 || s2.Quantile(0.9999) > 1000 {
		t.Fatalf("quantiles escaped [min,max]: %v, %v", s2.Quantile(0.0001), s2.Quantile(0.9999))
	}

	if s2.Count != 1000 || s2.Min != 1 || s2.Max != 1000 || s2.Sum != 500500 {
		t.Fatalf("snapshot aggregates = %+v", s2)
	}
	if m := s2.Mean(); m != 500.5 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.ObserveValue(seed*1000 + i)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Min != 1000 || s.Max != 8*1000+per-1 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for v := int64(1); v <= 100; v++ {
		a.ObserveValue(v)
	}
	for v := int64(1000); v <= 2000; v++ {
		b.ObserveValue(v)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 100+1001 || s.Min != 1 || s.Max != 2000 {
		t.Fatalf("merged aggregates = %+v", s)
	}
	var empty HistSnapshot
	empty.Merge(s)
	if empty.Count != s.Count || empty.Min != 1 {
		t.Fatalf("merge into empty = %+v", empty)
	}
}

func TestHistObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.Observe(3 * time.Millisecond)
	h.Observe(-time.Second) // clamped to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Min != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	if d := s.QuantileDuration(1); d != 3*time.Millisecond {
		t.Fatalf("max duration = %v", d)
	}
}
