package advisor

import (
	"strings"
	"testing"

	"dsspy/internal/apps"
	"dsspy/internal/core"
	"dsspy/internal/dstruct"
	"dsspy/internal/trace"
	"dsspy/internal/usecase"
)

func TestAdviseFigure3(t *testing.T) {
	rep := core.New().Run(func(s *trace.Session) {
		l := dstruct.NewListLabeled[int](s, "work items")
		for c := 0; c < 12; c++ {
			for i := 0; i < 150; i++ {
				l.Add(i)
			}
			for i := 0; i < l.Len(); i++ {
				l.Get(i)
			}
			l.Clear()
		}
	})
	plans := Advise(rep, 8)
	if len(plans) != 2 {
		t.Fatalf("plans = %d, want 2 (LI + FLR)", len(plans))
	}
	// FLR's region (the scans, ~50 %) matches LI's (the inserts, ~50 %);
	// both must produce sensible shares and Amdahl estimates.
	for _, p := range plans {
		if p.Share < 0.4 || p.Share > 0.6 {
			t.Errorf("%s share = %.2f, want ~0.5", p.UseCase.Kind, p.Share)
		}
		sp := p.Speedup(8)
		if sp < 1.5 || sp > 2.0 {
			t.Errorf("%s Amdahl(8) = %.2f, want ~1.8 for a 50%% region", p.UseCase.Kind, sp)
		}
		if p.Sketch == "" || !strings.Contains(p.Sketch, "par.") {
			t.Errorf("%s has no par-based sketch", p.UseCase.Kind)
		}
		if p.String() == "" {
			t.Error("empty String")
		}
	}
}

func TestAdviseRanksByBenefit(t *testing.T) {
	rep := core.New().Run(func(s *trace.Session) {
		// Dominant region: a list that is almost entirely one long
		// insertion phase.
		big := dstruct.NewListLabeled[int](s, "bulk load")
		for i := 0; i < 2000; i++ {
			big.Add(i)
		}
		// Minor region: scans cover only ~55 % of this instance's events.
		mixed := dstruct.NewListLabeled[int](s, "mixed")
		for i := 0; i < 300; i++ {
			mixed.Add(i)
		}
		for c := 0; c < 12; c++ {
			for i := 0; i < mixed.Len(); i += 10 {
				mixed.Get(i)
			}
			for i := 0; i < mixed.Len(); i++ {
				mixed.Get(i)
			}
		}
	})
	plans := Advise(rep, 8)
	if len(plans) < 2 {
		t.Fatalf("plans = %v", plans)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i-1].Speedup(8) < plans[i].Speedup(8) {
			t.Errorf("plans not ranked: %.2f before %.2f",
				plans[i-1].Speedup(8), plans[i].Speedup(8))
		}
	}
	if plans[0].UseCase.Instance.Label != "bulk load" {
		t.Errorf("top plan = %v, want the dominant bulk load", plans[0])
	}
}

func TestAdviseAllKindsHaveSketches(t *testing.T) {
	// gpdotnet (LI+FLR), queue and sort scenarios cover IQ, SAI, FS too.
	rep := core.New().Run(func(s *trace.Session) {
		fifo := dstruct.NewListLabeled[int](s, "fifo")
		for c := 0; c < 20; c++ {
			for i := 0; i < 10; i++ {
				fifo.Add(i)
			}
			for i := 0; i < 10; i++ {
				fifo.RemoveAt(0)
			}
		}
		sorted := dstruct.NewListLabeled[int](s, "sortme")
		for i := 0; i < 140; i++ {
			sorted.Add(140 - i)
		}
		sorted.Sort(func(a, b int) bool { return a < b })
		searched := dstruct.NewListLabeled[int](s, "searched")
		for i := 0; i < 100; i++ {
			searched.Add(i)
		}
		for i := 0; i < 1100; i++ {
			searched.Contains(i % 150)
		}
	})
	plans := Advise(rep, 4)
	kinds := map[usecase.Kind]bool{}
	for _, p := range plans {
		kinds[p.UseCase.Kind] = true
		if p.Sketch == "" {
			t.Errorf("%s has no sketch", p.UseCase.Kind)
		}
	}
	for _, k := range []usecase.Kind{usecase.ImplementQueue, usecase.SortAfterInsert, usecase.FrequentSearch} {
		if !kinds[k] {
			t.Errorf("missing plan for %s (got %v)", k, plans)
		}
	}
	// IQ replaces the whole container: share 1, best possible estimate.
	for _, p := range plans {
		if p.UseCase.Kind == usecase.ImplementQueue && p.Share != 1.0 {
			t.Errorf("IQ share = %v", p.Share)
		}
	}
}

func TestAdviseOnEvaluationApp(t *testing.T) {
	rep := core.New().Run(apps.ByName("Gpdotnet").Instrumented)
	plans := Advise(rep, 8)
	if len(plans) != 5 {
		t.Fatalf("gpdotnet plans = %d, want 5", len(plans))
	}
	var sb strings.Builder
	if err := Write(&sb, plans, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Plan 1", "Plan 5", "Amdahl estimate", "par."} {
		if !strings.Contains(out, want) {
			t.Errorf("advisor output missing %q", want)
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, nil, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "No transformation plans") {
		t.Error("empty output wrong")
	}
}

func TestSpeedupClamps(t *testing.T) {
	p := Plan{Share: 2.0}
	if got := p.Speedup(4); got != 4 {
		t.Errorf("clamped speedup = %v, want 4", got)
	}
	p = Plan{Share: -1}
	if got := p.Speedup(4); got != 1 {
		t.Errorf("negative share speedup = %v, want 1", got)
	}
	if got := (Plan{Share: 0.5}).Speedup(0); got != 1 {
		t.Errorf("zero cores speedup = %v, want 1", got)
	}
}

func TestIdentifier(t *testing.T) {
	cases := map[string]string{
		"work items":   "workItems",
		"":             "list",
		"población-x!": "poblaciNX", // non-ASCII letters are dropped, separators camel-case
	}
	for label, want := range cases {
		inst := trace.Instance{Label: label, Kind: trace.KindList}
		if got := identifier(inst); got != want {
			t.Errorf("identifier(%q) = %q, want %q", label, got, want)
		}
	}
}
