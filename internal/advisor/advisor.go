// Package advisor turns detected use cases into concrete transformation
// plans. The paper closes with "for now, each recommendation needs to be
// implemented manually; however automated transformation is possible if the
// recommended action is clearly specified" — this package is that
// specification: for every finding it emits the Go rewrite sketch (in terms
// of package par's primitives) and an expected-benefit estimate derived from
// the profile via Amdahl's law, so recommendations can be ranked before an
// engineer invests in any of them.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"dsspy/internal/core"
	"dsspy/internal/pattern"
	"dsspy/internal/trace"
	"dsspy/internal/usecase"
)

// Plan is one actionable transformation.
type Plan struct {
	UseCase usecase.UseCase
	// Share is the fraction of the instance's access events inside the
	// region the transformation parallelizes — the profile-derived stand-in
	// for the region's runtime share.
	Share float64
	// Sketch is the Go rewrite template, phrased with package par.
	Sketch string
}

// Speedup estimates the plan's benefit on the given core count via
// Amdahl's law over the affected share.
func (p Plan) Speedup(cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	s := p.Share
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return 1.0 / ((1 - s) + s/float64(cores))
}

func (p Plan) String() string {
	return fmt.Sprintf("%s on %s %s (region share %.0f%%)",
		p.UseCase.Kind, p.UseCase.Instance.TypeName, p.UseCase.Instance.Label, 100*p.Share)
}

// Advise builds one plan per detected parallel use case in the report,
// ranked by estimated benefit on the given core count (best first).
func Advise(rep *core.Report, cores int) []Plan {
	var plans []Plan
	for _, ir := range rep.Instances {
		st := ir.Profile.Stats()
		if st.Total == 0 {
			continue
		}
		for _, u := range ir.UseCases {
			if !u.Kind.Parallel() {
				continue
			}
			plans = append(plans, Plan{
				UseCase: u,
				Share:   regionShare(u.Kind, ir),
				Sketch:  sketch(u.Kind, ir.Profile.Instance),
			})
		}
	}
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].Speedup(cores) > plans[j].Speedup(cores)
	})
	return plans
}

// regionShare estimates what fraction of the instance's accesses the use
// case's region covers.
func regionShare(k usecase.Kind, ir *core.InstanceResult) float64 {
	st := ir.Profile.Stats()
	total := float64(st.Total)
	if total == 0 {
		return 0
	}
	sum := ir.Summary
	switch k {
	case usecase.LongInsert:
		events := sum.InsertEvents()
		// Array fills count their write patterns as insertion phases.
		if ir.Profile.Instance.Kind == trace.KindArray {
			events += sum.EventsIn[pattern.WriteForward] + sum.EventsIn[pattern.WriteBackward]
		}
		return float64(events) / total
	case usecase.FrequentLongRead, usecase.FrequentSearch:
		reads := sum.DirectionalReadEvents() +
			st.Count(trace.OpSearch) + st.Count(trace.OpForAll)
		return float64(reads) / total
	case usecase.SortAfterInsert:
		return float64(sum.InsertEvents()+st.Count(trace.OpSort)) / total
	case usecase.ImplementQueue:
		return 1.0 // the container itself is replaced
	default:
		return 0
	}
}

// sketch renders the rewrite template for the use case.
func sketch(k usecase.Kind, inst trace.Instance) string {
	name := identifier(inst)
	switch k {
	case usecase.LongInsert:
		return fmt.Sprintf(strings.TrimSpace(`
// Long-Insert: materialize the insertion loop as a parallel fill.
// Before:  for i := 0; i < n; i++ { %[1]s.Add(f(i)) }
buf := make([]T, n)
par.FillFunc(buf, workers, func(i int) T { return f(i) })
%[1]s.AddRange(buf)
`), name)
	case usecase.ImplementQueue:
		return fmt.Sprintf(strings.TrimSpace(`
// Implement-Queue: the list is used as a FIFO; replace it with a
// synchronized queue so producers and consumers can run concurrently.
// Before:  %[1]s.Add(v) … v := %[1]s.Get(0); %[1]s.RemoveAt(0)
q := par.NewConcurrentQueue[T]()
q.Enqueue(v)                 // any producer goroutine
if v, ok := q.Dequeue(); ok { … }   // any consumer goroutine
`), name)
	case usecase.SortAfterInsert:
		return fmt.Sprintf(strings.TrimSpace(`
// Sort-After-Insert: insertion order is irrelevant; fill in parallel and
// sort with the parallel merge sort.
buf := make([]T, n)
par.FillFunc(buf, workers, func(i int) T { return f(i) })
par.MergeSort(buf, 0, less)
%[1]s.AddRange(buf)
`), name)
	case usecase.FrequentSearch:
		return fmt.Sprintf(strings.TrimSpace(`
// Frequent-Search: split the list into chunks and search them in parallel.
// Before:  idx := %[1]s.IndexOf(target)
idx := par.IndexOf(%[1]s.Unwrap(), target, workers)
// Alternatively switch to a structure optimized for searches (sorted /
// hashed) if ordering permits.
`), name)
	case usecase.FrequentLongRead:
		return fmt.Sprintf(strings.TrimSpace(`
// Frequent-Long-Read: the repeated full scans are a disguised search or
// aggregation; run them chunked in parallel.
// Search:     idx := par.IndexFunc(%[1]s.Unwrap(), workers, pred)
// Arg-max:    idx := par.MaxIndex(%[1]s.Unwrap(), workers, less)
// Aggregate:  sum := par.Reduce(%[1]s.Unwrap(), workers, identity, combine)
`), name)
	default:
		return ""
	}
}

// identifier derives a readable variable name for the sketch.
func identifier(inst trace.Instance) string {
	label := inst.Label
	if label == "" {
		label = strings.ToLower(inst.Kind.String())
	}
	var sb strings.Builder
	up := false
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			if up && sb.Len() > 0 {
				sb.WriteRune(r &^ 0x20)
			} else {
				sb.WriteRune(r)
			}
			up = false
		default:
			up = true
		}
	}
	if sb.Len() == 0 {
		return "instance"
	}
	return sb.String()
}

// Write renders the ranked plans.
func Write(w interface{ Write([]byte) (int, error) }, plans []Plan, cores int) error {
	if len(plans) == 0 {
		_, err := fmt.Fprintln(w, "No transformation plans: no parallel use cases detected.")
		return err
	}
	for i, p := range plans {
		if _, err := fmt.Fprintf(w,
			"Plan %d — %s\n  Site:            %s\n  Region share:    %.0f%% of this instance's accesses\n  Amdahl estimate: %.2fx on %d cores\n  Sketch:\n%s\n\n",
			i+1, p, p.UseCase.Instance.Site, 100*p.Share, p.Speedup(cores), cores,
			indent(p.Sketch, "    ")); err != nil {
			return err
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
