// Package advisor turns detected use cases into concrete transformation
// plans. The paper closes with "for now, each recommendation needs to be
// implemented manually; however automated transformation is possible if the
// recommended action is clearly specified" — this package is that
// specification: for every finding it emits the Go rewrite sketch (in terms
// of package par's primitives) and an expected-benefit estimate derived from
// the profile via Amdahl's law, so recommendations can be ranked before an
// engineer invests in any of them.
package advisor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dsspy/internal/core"
	"dsspy/internal/pattern"
	"dsspy/internal/trace"
	"dsspy/internal/usecase"
)

// PlanKind classifies what a plan actually does to the code. The paper's
// parallel use cases all map to PlanParallelize; the contention-aware use
// cases map to container replacements; and a parallel use case detected on
// an instance that is *already* contended is demoted to PlanKeepSequential —
// parallelizing the surrounding loop would race or serialize on a lock, so
// the container must be fixed first.
type PlanKind uint8

const (
	// PlanParallelize parallelizes the surrounding region (the classic
	// recommendation for the paper's five parallel use cases).
	PlanParallelize PlanKind = iota
	// PlanRWMutexWrap guards a read-mostly structure with a reader/writer
	// lock so concurrent readers stop serializing.
	PlanRWMutexWrap
	// PlanShardByKey partitions a contended map across per-shard locks
	// (par.ShardedMap).
	PlanShardByKey
	// PlanMPSCQueue replaces a list-FIFO hand-off with a bounded
	// multi-producer ring (par.MPSCRing).
	PlanMPSCQueue
	// PlanKeepSequential recommends NOT parallelizing: the instance is
	// already under contended multi-thread access, so the naive
	// transformation would be wrong. Estimated speedup is 1.
	PlanKeepSequential
)

var planKindNames = [...]string{
	PlanParallelize:    "parallelize",
	PlanRWMutexWrap:    "RWMutex-wrap",
	PlanShardByKey:     "shard-by-key",
	PlanMPSCQueue:      "MPSC-queue",
	PlanKeepSequential: "keep-sequential",
}

func (k PlanKind) String() string {
	if int(k) < len(planKindNames) {
		return planKindNames[k]
	}
	return fmt.Sprintf("PlanKind(%d)", uint8(k))
}

// Plan is one actionable transformation.
type Plan struct {
	UseCase usecase.UseCase
	// Kind says what the transformation does: parallelize the region,
	// replace/wrap the container, or keep it sequential.
	Kind PlanKind
	// Share is the fraction of the instance's access events inside the
	// region the transformation parallelizes — the profile-derived stand-in
	// for the region's runtime share.
	Share float64
	// Contended is the fraction of the instance's events inside contention
	// episodes (0 for single-threaded instances). PlanParallelize discounts
	// its Amdahl estimate by it: contended accesses stay serialized no
	// matter how many workers the region gets.
	Contended float64
	// Sketch is the Go rewrite template, phrased with package par.
	Sketch string
	// Confidence is the detection confidence inherited from the use case's
	// sampling error bound: 1 for exact (full-fidelity) detections, lower
	// when the profile that produced the finding was sampled.
	Confidence float64
}

// Speedup estimates the plan's benefit on the given core count via
// Amdahl's law over the affected share. PlanParallelize scales the share by
// the uncontended fraction (contended accesses serialize regardless of the
// worker count); keep-sequential plans estimate 1 by definition.
func (p Plan) Speedup(cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	if p.Kind == PlanKeepSequential {
		return 1
	}
	s := p.Share
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	if p.Kind == PlanParallelize && p.Contended > 0 {
		c := p.Contended
		if c > 1 {
			c = 1
		}
		s *= 1 - c
	}
	return 1.0 / ((1 - s) + s/float64(cores))
}

func (p Plan) String() string {
	return fmt.Sprintf("%s [%s] on %s %s (region share %.0f%%)",
		p.UseCase.Kind, p.Kind, p.UseCase.Instance.TypeName, p.UseCase.Instance.Label, 100*p.Share)
}

// Advise builds one plan per detected parallel use case in the report,
// ranked by estimated benefit on the given core count (best first).
// Keep-sequential demotions rank last by construction (estimate 1).
func Advise(rep *core.Report, cores int) []Plan {
	var plans []Plan
	for _, ir := range rep.Instances {
		st := ir.Profile.Stats()
		if st.Total == 0 {
			continue
		}
		for _, u := range ir.UseCases {
			if !u.Kind.Parallel() {
				continue
			}
			kind := planKind(u.Kind, ir)
			plans = append(plans, Plan{
				UseCase:    u,
				Kind:       kind,
				Share:      regionShare(u.Kind, ir),
				Contended:  contendedShare(ir),
				Sketch:     sketch(kind, u.Kind, ir.Profile.Instance),
				Confidence: u.Confidence(),
			})
		}
	}
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].Speedup(cores) > plans[j].Speedup(cores)
	})
	return plans
}

// contendedShare is the fraction of the instance's events that stay
// serialized under parallelization. Episodes without writes are harmless
// (concurrent readers don't exclude each other), so only instances with
// writer episodes are discounted.
func contendedShare(ir *core.InstanceResult) float64 {
	if ir.Contention.Contended() {
		return ir.Contention.EpisodeShare()
	}
	return 0
}

// planKind maps a use case (in the context of its instance's contention
// profile) to the transformation that is actually safe and profitable.
func planKind(k usecase.Kind, ir *core.InstanceResult) PlanKind {
	switch k {
	case usecase.ContendedMap:
		return PlanShardByKey
	case usecase.MPSCQueue:
		return PlanMPSCQueue
	case usecase.ReadMostlyTable:
		return PlanRWMutexWrap
	case usecase.PhaseSeparatedRW:
		return PlanParallelize
	}
	// A classic parallel use case on an instance that is already contended:
	// parallelizing the surrounding region would race on the container (or
	// serialize on whatever lock guards it). Keep it sequential until the
	// container is fixed.
	if ir.Contention.Contended() {
		return PlanKeepSequential
	}
	return PlanParallelize
}

// regionShare estimates what fraction of the instance's accesses the use
// case's region covers.
func regionShare(k usecase.Kind, ir *core.InstanceResult) float64 {
	st := ir.Profile.Stats()
	total := float64(st.Total)
	if total == 0 {
		return 0
	}
	sum := ir.Summary
	switch k {
	case usecase.LongInsert:
		events := sum.InsertEvents()
		// Array fills count their write patterns as insertion phases.
		if ir.Profile.Instance.Kind == trace.KindArray {
			events += sum.EventsIn[pattern.WriteForward] + sum.EventsIn[pattern.WriteBackward]
		}
		return float64(events) / total
	case usecase.FrequentLongRead, usecase.FrequentSearch:
		reads := sum.DirectionalReadEvents() +
			st.Count(trace.OpSearch) + st.Count(trace.OpForAll)
		return float64(reads) / total
	case usecase.SortAfterInsert:
		return float64(sum.InsertEvents()+st.Count(trace.OpSort)) / total
	case usecase.ImplementQueue, usecase.ContendedMap, usecase.MPSCQueue,
		usecase.ReadMostlyTable:
		return 1.0 // the container itself is replaced or wrapped
	case usecase.PhaseSeparatedRW:
		return 1.0 // every phase of the instance's accesses parallelizes
	default:
		return 0
	}
}

// sketch renders the rewrite template for the plan. The plan kind picks the
// template family (container replacement vs region parallelization vs
// keep-sequential); the use case kind selects among the region templates.
func sketch(pk PlanKind, k usecase.Kind, inst trace.Instance) string {
	name := identifier(inst)
	switch pk {
	case PlanShardByKey:
		return fmt.Sprintf(strings.TrimSpace(`
// Contended-Map: writers from several goroutines serialize on one lock.
// Shard by key hash so concurrent writers usually hit disjoint shards.
// Before:  mu.Lock(); %[1]s[k] = v; mu.Unlock()
m := par.NewShardedMap[K, V](0, par.HashInt) // 0 → one shard per core
m.Put(k, v)                  // any goroutine
v, ok := m.Get(k)            // any goroutine
m.Update(k, func(v V) V { return v + 1 })   // atomic read-modify-write
`), name)
	case PlanMPSCQueue:
		return fmt.Sprintf(strings.TrimSpace(`
// MPSC-Queue: the list-FIFO hand-off makes producers contend and pays O(n)
// per front removal. Replace it with a bounded multi-producer ring: one CAS
// per enqueue, O(1) at both ends, no allocation after construction.
// Before:  mu.Lock(); %[1]s.Add(v); mu.Unlock() … v := %[1]s.Get(0); %[1]s.RemoveAt(0)
q := par.NewMPSCRing[T](1024)
for !q.TryEnqueue(v) { runtime.Gosched() }  // any producer goroutine
if v, ok := q.TryDequeue(); ok { … }        // the single consumer
`), name)
	case PlanRWMutexWrap:
		return fmt.Sprintf(strings.TrimSpace(`
// Read-Mostly-Table: almost every access is a read, yet readers serialize.
// Wrap the table in a sync.RWMutex so readers proceed in parallel and only
// the rare writes take the exclusive lock (see par.ShardedMap to also
// spread the writes once readers scale).
var mu sync.RWMutex
mu.RLock(); v, ok := %[1]s[k]; mu.RUnlock()   // concurrent readers
mu.Lock(); %[1]s[k] = v; mu.Unlock()          // rare writer
`), name)
	case PlanKeepSequential:
		return fmt.Sprintf(strings.TrimSpace(`
// Keep-Sequential: %[1]s is already accessed by several threads with
// interleaved writes. Parallelizing the surrounding region would race on
// the container or serialize on its lock — fix the container first (see
// par.ShardedMap / par.MPSCRing), then revisit this region.
`), name)
	}
	switch k {
	case usecase.PhaseSeparatedRW:
		return fmt.Sprintf(strings.TrimSpace(`
// Phase-Separated-RW: writes and reads happen in distinct phases; no lock
// is needed, only a barrier at the phase boundary.
par.For(n, workers, func(i int) { build(%[1]s, i) })  // write phase
// implicit barrier: par.For returns only when every worker is done
par.For(n, workers, func(i int) { use(%[1]s, i) })    // read phase
`), name)
	case usecase.LongInsert:
		return fmt.Sprintf(strings.TrimSpace(`
// Long-Insert: materialize the insertion loop as a parallel fill.
// Before:  for i := 0; i < n; i++ { %[1]s.Add(f(i)) }
buf := make([]T, n)
par.FillFunc(buf, workers, func(i int) T { return f(i) })
%[1]s.AddRange(buf)
`), name)
	case usecase.ImplementQueue:
		return fmt.Sprintf(strings.TrimSpace(`
// Implement-Queue: the list is used as a FIFO; replace it with a
// synchronized queue so producers and consumers can run concurrently.
// Before:  %[1]s.Add(v) … v := %[1]s.Get(0); %[1]s.RemoveAt(0)
q := par.NewConcurrentQueue[T]()
q.Enqueue(v)                 // any producer goroutine
if v, ok := q.Dequeue(); ok { … }   // any consumer goroutine
`), name)
	case usecase.SortAfterInsert:
		return fmt.Sprintf(strings.TrimSpace(`
// Sort-After-Insert: insertion order is irrelevant; fill in parallel and
// sort with the parallel merge sort.
buf := make([]T, n)
par.FillFunc(buf, workers, func(i int) T { return f(i) })
par.MergeSort(buf, 0, less)
%[1]s.AddRange(buf)
`), name)
	case usecase.FrequentSearch:
		return fmt.Sprintf(strings.TrimSpace(`
// Frequent-Search: split the list into chunks and search them in parallel.
// Before:  idx := %[1]s.IndexOf(target)
idx := par.IndexOf(%[1]s.Unwrap(), target, workers)
// Alternatively switch to a structure optimized for searches (sorted /
// hashed) if ordering permits.
`), name)
	case usecase.FrequentLongRead:
		return fmt.Sprintf(strings.TrimSpace(`
// Frequent-Long-Read: the repeated full scans are a disguised search or
// aggregation; run them chunked in parallel.
// Search:     idx := par.IndexFunc(%[1]s.Unwrap(), workers, pred)
// Arg-max:    idx := par.MaxIndex(%[1]s.Unwrap(), workers, less)
// Aggregate:  sum := par.Reduce(%[1]s.Unwrap(), workers, identity, combine)
`), name)
	default:
		return ""
	}
}

// identifier derives a readable variable name for the sketch.
func identifier(inst trace.Instance) string {
	label := inst.Label
	if label == "" {
		label = strings.ToLower(inst.Kind.String())
	}
	var sb strings.Builder
	up := false
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			if up && sb.Len() > 0 {
				sb.WriteRune(r &^ 0x20)
			} else {
				sb.WriteRune(r)
			}
			up = false
		default:
			up = true
		}
	}
	if sb.Len() == 0 {
		return "instance"
	}
	return sb.String()
}

// Write renders the ranked plans.
func Write(w io.Writer, plans []Plan, cores int) error {
	if len(plans) == 0 {
		_, err := fmt.Fprintln(w, "No transformation plans: no parallel use cases detected.")
		return err
	}
	for i, p := range plans {
		if _, err := fmt.Fprintf(w,
			"Plan %d — %s\n  Site:            %s\n  Region share:    %.0f%% of this instance's accesses\n  Amdahl estimate: %.2fx on %d cores\n",
			i+1, p, p.UseCase.Instance.Site, 100*p.Share, p.Speedup(cores), cores); err != nil {
			return err
		}
		if p.Confidence > 0 && p.Confidence < 1 {
			if _, err := fmt.Fprintf(w,
				"  Confidence:      %.1f%% (finding derived from a sampled profile)\n",
				100*p.Confidence); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  Sketch:\n%s\n\n", indent(p.Sketch, "    ")); err != nil {
			return err
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
