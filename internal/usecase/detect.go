package usecase

import (
	"fmt"

	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// The eight detectors. Each reads the aggregates its Stream reducer folded
// from events, runs and patterns, applies the paper's thresholds, and renders
// the evidence string. Batch and streaming modes both arrive here, so the
// threshold semantics exist exactly once.

// linear reports whether the instance is a linear data structure — the use
// cases are defined over lists and arrays (DSspy implements its automatic
// analysis for exactly those two, §IV), plus the linear containers an
// engineer might hand-roll them from.
func linear(k trace.Kind) bool {
	switch k {
	case trace.KindList, trace.KindArray, trace.KindLinkedList, trace.KindSortedList:
		return true
	}
	return false
}

// longInsert: frequent insertion phases (>30 % of the profile) with at least
// one long phase (≥100 consecutive events) inserting more than one element.
// For fixed-size arrays a sequential write fill IS the insertion idiom — the
// paper's evaluation reports Long-Inserts on the Mandelbrot image array and
// on GPdotNET's fitness array, both populated by positional writes — so
// Write-Forward/Backward patterns on arrays count as insertion phases here.
func (u *Stream) longInsert(inst trace.Instance, st *profile.Stats) (string, bool) {
	insertEvents, longest := u.liInsEvents, u.liInsLongest
	if inst.Kind == trace.KindArray {
		insertEvents += u.liWrEvents
		longest = max(longest, u.liWrLongest)
	}
	frac := st.Fraction(insertEvents)
	if frac <= u.th.LIMinPhaseFraction || longest < u.th.LIMinRunLen {
		return "", false
	}
	return fmt.Sprintf("insertion phases cover %.0f%% of the profile; longest phase inserts %d consecutive elements",
		100*frac, longest), true
}

// implementQueue: a high share of accesses (>60 % in sum) affects two
// different ends — inserts at one end, reads/deletes at the other.
func (u *Stream) implementQueue(inst trace.Instance, st *profile.Stats) (string, bool) {
	if inst.Kind != trace.KindList && inst.Kind != trace.KindLinkedList {
		return "", false
	}
	if st.Total < u.th.IQMinOps {
		return "", false
	}
	// Orientation 1: produce at the back, consume at the front (a FIFO on
	// a list); orientation 2 is the mirror image.
	check := func(ins, outs int) (string, bool) {
		fi, fo := st.Fraction(ins), st.Fraction(outs)
		if fi+fo > u.th.IQMinEndFraction && fi >= u.th.IQMinPerEndFraction && fo >= u.th.IQMinPerEndFraction {
			return fmt.Sprintf("%.0f%% of accesses affect two different ends (%.0f%% insertions at one end, %.0f%% reads/deletes at the other)",
				100*(fi+fo), 100*fi, 100*fo), true
		}
		return "", false
	}
	if ev, ok := check(u.iqInsBack, u.iqOutFront); ok {
		return ev, true
	}
	return check(u.iqInsFront, u.iqOutBack)
}

// sortAfterInsert: a sort run directly follows a long insertion phase (>30 %
// of the profile, ≥100 consecutive events).
func (u *Stream) sortAfterInsert(inst trace.Instance, st *profile.Stats) (string, bool) {
	if !linear(inst.Kind) {
		return "", false
	}
	if st.Fraction(u.saiInsertEvents) <= u.th.SAIMinPhaseFraction {
		return "", false
	}
	if u.saiMatchedLen == 0 {
		return "", false
	}
	return fmt.Sprintf("a sort directly follows an insertion phase of %d consecutive elements — insertion order is irrelevant",
		u.saiMatchedLen), true
}

// frequentSearch: the program often searches within a linear data structure
// (>1000 search operations, and searches plus directional read patterns make
// up ≥2 % of all access events).
func (u *Stream) frequentSearch(st *profile.Stats) (string, bool) {
	searches := st.Count(trace.OpSearch)
	if searches <= u.th.FSMinSearchOps {
		return "", false
	}
	searchLike := searches + u.fsDirReadEvents
	if st.Fraction(searchLike) < u.th.FSMinSearchFraction {
		return "", false
	}
	return fmt.Sprintf("%d search operations (%.0f%% of all access events are search-like)",
		searches, 100*st.Fraction(searchLike)), true
}

// frequentLongRead: more than 10 sequential read patterns, each covering
// ≥50 % of the structure, in a profile where at least 50 % of the access
// types are Read or Search. A compound ForAll traversal counts as a
// full-coverage sequential read.
func (u *Stream) frequentLongRead(st *profile.Stats) (string, bool) {
	// The 50 % read share is over element accesses; lifecycle Clears are
	// not accesses to elements (the Figure 3 profile — equal insert and
	// read phases separated by Clears — is the paper's canonical FLR hit).
	elementAccesses := st.Total - st.Count(trace.OpClear)
	if elementAccesses == 0 {
		return "", false
	}
	readFrac := float64(st.ReadLike) / float64(elementAccesses)
	if readFrac < u.th.FLRMinReadFraction {
		return "", false
	}
	long := st.Count(trace.OpForAll) + u.flrLongReads
	if long <= u.th.FLRMinPatterns {
		return "", false
	}
	return fmt.Sprintf("%d sequential read patterns each covering ≥%.0f%% of the structure (%.0f%% of access types are reads/searches) — possibly a disguised search",
		long, 100*u.th.FLRMinCoverage, 100*readFrac), true
}

// insertDeleteFront: inserts and deletes on a fixed-size array cause copy
// overhead on every operation.
func (u *Stream) insertDeleteFront(inst trace.Instance, st *profile.Stats) (string, bool) {
	if inst.Kind != trace.KindArray {
		return "", false
	}
	ins, del := st.Count(trace.OpInsert), st.Count(trace.OpDelete)
	copies := st.Count(trace.OpCopy) + st.Count(trace.OpResize)
	if ins == 0 || del == 0 || ins+del < u.th.IDFMinOps || copies == 0 {
		return "", false
	}
	return fmt.Sprintf("%d inserts and %d deletes on a fixed-size array caused %d copy/resize operations",
		ins, del, copies), true
}

// stackImplementation: inserts and deletes always access a common end of a
// list.
func (u *Stream) stackImplementation(inst trace.Instance, st *profile.Stats) (string, bool) {
	if inst.Kind != trace.KindList && inst.Kind != trace.KindLinkedList {
		return "", false
	}
	ins, del := st.Count(trace.OpInsert), st.Count(trace.OpDelete)
	if ins == 0 || del == 0 || ins+del < u.th.SIMinOps {
		return "", false
	}
	if u.siInsBack == ins && u.siDelBack == del {
		return fmt.Sprintf("all %d inserts and %d deletes access the back end — a hand-rolled stack", ins, del), true
	}
	if u.siInsFront == ins && u.siDelFront == del {
		return fmt.Sprintf("all %d inserts and %d deletes access the front end — a hand-rolled stack", ins, del), true
	}
	return "", false
}

// writeWithoutRead: the profile ends with a write pattern whose results are
// never read — cleanup that should be left to deallocation. A terminal Clear
// is skipped by the Run fold (clearing after the cleanup writes is part of
// the same deallocation idiom), so the folded state holds the last non-Clear
// run.
func (u *Stream) writeWithoutRead() (string, bool) {
	if !u.wwrSeen || u.wwrLastOp != trace.OpWrite || u.wwrLastLen < u.th.WWRMinTrailingWrites {
		return "", false
	}
	return fmt.Sprintf("the profile ends with %d writes that are never read — likely cleanup better left to the garbage collector",
		u.wwrLastLen), true
}

// atBack mirrors the run segmentation's notion of the moving back end. For
// deletions the size has already shrunk, so the old back is at the new size.
func atBack(e trace.Event) bool {
	switch e.Op {
	case trace.OpDelete:
		return e.Index >= e.Size
	default:
		return e.Size > 0 && e.Index >= e.Size-1
	}
}
