package usecase

import (
	"fmt"

	"dsspy/internal/pattern"
	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// linear reports whether the instance is a linear data structure — the use
// cases are defined over lists and arrays (DSspy implements its automatic
// analysis for exactly those two, §IV), plus the linear containers an
// engineer might hand-roll them from.
func linear(k trace.Kind) bool {
	switch k {
	case trace.KindList, trace.KindArray, trace.KindLinkedList, trace.KindSortedList:
		return true
	}
	return false
}

// detectLongInsert: frequent insertion phases (>30 % of the profile) with at
// least one long phase (≥100 consecutive events) inserting more than one
// element. For fixed-size arrays a sequential write fill IS the insertion
// idiom — the paper's evaluation reports Long-Inserts on the Mandelbrot
// image array and on GPdotNET's fitness array, both populated by positional
// writes — so Write-Forward/Backward patterns on arrays count as insertion
// phases here.
func detectLongInsert(p *profile.Profile, st *profile.Stats, sum *pattern.Summary, th Thresholds) (string, bool) {
	insertLike := func(t pattern.Type) bool {
		if t == pattern.InsertBack || t == pattern.InsertFront {
			return true
		}
		if p.Instance.Kind == trace.KindArray {
			return t == pattern.WriteForward || t == pattern.WriteBackward
		}
		return false
	}
	insertEvents, longest := 0, 0
	for _, pat := range sum.Patterns {
		if !insertLike(pat.Type) {
			continue
		}
		insertEvents += pat.Len()
		if pat.Len() > longest {
			longest = pat.Len()
		}
	}
	frac := st.Fraction(insertEvents)
	if frac <= th.LIMinPhaseFraction || longest < th.LIMinRunLen {
		return "", false
	}
	return fmt.Sprintf("insertion phases cover %.0f%% of the profile; longest phase inserts %d consecutive elements",
		100*frac, longest), true
}

// detectImplementQueue: a high share of accesses (>60 % in sum) affects two
// different ends — inserts at one end, reads/deletes at the other.
func detectImplementQueue(p *profile.Profile, st *profile.Stats, th Thresholds) (string, bool) {
	if p.Instance.Kind != trace.KindList && p.Instance.Kind != trace.KindLinkedList {
		return "", false
	}
	if st.Total < th.IQMinOps {
		return "", false
	}
	var insFront, insBack, outFront, outBack int
	for _, e := range p.Events {
		if e.Index < 0 {
			continue
		}
		front := e.Index == 0
		back := atBack(e)
		switch e.Op {
		case trace.OpInsert:
			if front {
				insFront++
			} else if back {
				insBack++
			}
		case trace.OpDelete, trace.OpRead:
			if front {
				outFront++
			} else if back {
				outBack++
			}
		}
	}
	// Orientation 1: produce at the back, consume at the front (a FIFO on
	// a list); orientation 2 is the mirror image.
	check := func(ins, outs int) (string, bool) {
		fi, fo := st.Fraction(ins), st.Fraction(outs)
		if fi+fo > th.IQMinEndFraction && fi >= th.IQMinPerEndFraction && fo >= th.IQMinPerEndFraction {
			return fmt.Sprintf("%.0f%% of accesses affect two different ends (%.0f%% insertions at one end, %.0f%% reads/deletes at the other)",
				100*(fi+fo), 100*fi, 100*fo), true
		}
		return "", false
	}
	if ev, ok := check(insBack, outFront); ok {
		return ev, true
	}
	return check(insFront, outBack)
}

// detectSortAfterInsert: a sort pattern directly follows a long insertion
// phase (>30 % of the profile, ≥100 consecutive events).
func detectSortAfterInsert(p *profile.Profile, st *profile.Stats, th Thresholds) (string, bool) {
	if !linear(p.Instance.Kind) {
		return "", false
	}
	runs := p.Runs()
	var insertEvents int
	for _, r := range runs {
		if r.Op == trace.OpInsert {
			insertEvents += r.Len()
		}
	}
	if st.Fraction(insertEvents) <= th.SAIMinPhaseFraction {
		return "", false
	}
	for i := 0; i+1 < len(runs); i++ {
		if runs[i].Op == trace.OpInsert && runs[i].Len() >= th.SAIMinRunLen &&
			runs[i+1].Op == trace.OpSort {
			return fmt.Sprintf("a sort directly follows an insertion phase of %d consecutive elements — insertion order is irrelevant",
				runs[i].Len()), true
		}
	}
	return "", false
}

// detectFrequentSearch: the program often searches within a linear data
// structure (>1000 search operations, and searches plus directional read
// patterns make up ≥2 % of all access events).
func detectFrequentSearch(st *profile.Stats, sum *pattern.Summary, th Thresholds) (string, bool) {
	searches := st.Count(trace.OpSearch)
	if searches <= th.FSMinSearchOps {
		return "", false
	}
	searchLike := searches + sum.DirectionalReadEvents()
	if st.Fraction(searchLike) < th.FSMinSearchFraction {
		return "", false
	}
	return fmt.Sprintf("%d search operations (%.0f%% of all access events are search-like)",
		searches, 100*st.Fraction(searchLike)), true
}

// detectFrequentLongRead: more than 10 sequential read patterns, each
// covering ≥50 % of the structure, in a profile where at least 50 % of the
// access types are Read or Search. A compound ForAll traversal counts as a
// full-coverage sequential read.
func detectFrequentLongRead(st *profile.Stats, sum *pattern.Summary, th Thresholds) (string, bool) {
	// The 50 % read share is over element accesses; lifecycle Clears are
	// not accesses to elements (the Figure 3 profile — equal insert and
	// read phases separated by Clears — is the paper's canonical FLR hit).
	elementAccesses := st.Total - st.Count(trace.OpClear)
	if elementAccesses == 0 {
		return "", false
	}
	readFrac := float64(st.ReadLike) / float64(elementAccesses)
	if readFrac < th.FLRMinReadFraction {
		return "", false
	}
	long := st.Count(trace.OpForAll)
	for _, pat := range sum.Patterns {
		if (pat.Type == pattern.ReadForward || pat.Type == pattern.ReadBackward) &&
			pat.Coverage() >= th.FLRMinCoverage {
			long++
		}
	}
	if long <= th.FLRMinPatterns {
		return "", false
	}
	return fmt.Sprintf("%d sequential read patterns each covering ≥%.0f%% of the structure (%.0f%% of access types are reads/searches) — possibly a disguised search",
		long, 100*th.FLRMinCoverage, 100*readFrac), true
}

// detectInsertDeleteFront: inserts and deletes on a fixed-size array cause
// copy overhead on every operation.
func detectInsertDeleteFront(p *profile.Profile, st *profile.Stats, sum *pattern.Summary, th Thresholds) (string, bool) {
	if p.Instance.Kind != trace.KindArray {
		return "", false
	}
	ins, del := st.Count(trace.OpInsert), st.Count(trace.OpDelete)
	copies := st.Count(trace.OpCopy) + st.Count(trace.OpResize)
	if ins == 0 || del == 0 || ins+del < th.IDFMinOps || copies == 0 {
		return "", false
	}
	return fmt.Sprintf("%d inserts and %d deletes on a fixed-size array caused %d copy/resize operations",
		ins, del, copies), true
}

// detectStackImplementation: inserts and deletes always access a common end
// of a list.
func detectStackImplementation(p *profile.Profile, st *profile.Stats, sum *pattern.Summary, th Thresholds) (string, bool) {
	if p.Instance.Kind != trace.KindList && p.Instance.Kind != trace.KindLinkedList {
		return "", false
	}
	ins, del := st.Count(trace.OpInsert), st.Count(trace.OpDelete)
	if ins == 0 || del == 0 || ins+del < th.SIMinOps {
		return "", false
	}
	var insFront, insBack, delFront, delBack int
	for _, e := range p.Events {
		if e.Index < 0 {
			continue
		}
		switch e.Op {
		case trace.OpInsert:
			if e.Index == 0 && e.Size <= 1 {
				// First element of an empty structure is both ends;
				// count it where the rest of the run goes.
				insBack++
				insFront++
			} else if e.Index == 0 {
				insFront++
			} else if atBack(e) {
				insBack++
			}
		case trace.OpDelete:
			if e.Index == 0 && e.Size == 0 {
				delFront++
				delBack++
			} else if e.Index == 0 {
				delFront++
			} else if atBack(e) {
				delBack++
			}
		}
	}
	if insBack == ins && delBack == del {
		return fmt.Sprintf("all %d inserts and %d deletes access the back end — a hand-rolled stack", ins, del), true
	}
	if insFront == ins && delFront == del {
		return fmt.Sprintf("all %d inserts and %d deletes access the front end — a hand-rolled stack", ins, del), true
	}
	return "", false
}

// detectWriteWithoutRead: the profile ends with a write pattern whose
// results are never read — cleanup that should be left to deallocation.
func detectWriteWithoutRead(p *profile.Profile, th Thresholds) (string, bool) {
	runs := p.Runs()
	// Skip a terminal Clear: clearing after the cleanup writes is part of
	// the same deallocation idiom.
	i := len(runs) - 1
	for i >= 0 && runs[i].Op == trace.OpClear {
		i--
	}
	if i < 0 {
		return "", false
	}
	last := runs[i]
	if last.Op != trace.OpWrite || last.Len() < th.WWRMinTrailingWrites {
		return "", false
	}
	return fmt.Sprintf("the profile ends with %d writes that are never read — likely cleanup better left to the garbage collector",
		last.Len()), true
}

// atBack mirrors the run segmentation's notion of the moving back end.
func atBack(e trace.Event) bool {
	switch e.Op {
	case trace.OpDelete:
		return e.Index >= e.Size
	default:
		return e.Size > 0 && e.Index >= e.Size-1
	}
}
