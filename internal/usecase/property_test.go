package usecase

import (
	"testing"
	"testing/quick"

	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// Property tests over the detector engine: threshold monotonicity and
// detector stability on randomized profiles. These pin the contract the
// tuner relies on — loosening a threshold can only add findings, tightening
// can only remove them.

// randomProfile builds a profile from a compact random script so quick can
// shrink failures: each step is either a batch of appends, a full scan, a
// burst of searches, or a clear.
func randomProfile(script []uint8) *profile.Profile {
	rec := trace.NewMemRecorder()
	s := trace.NewSessionWith(trace.Options{Recorder: rec})
	id := s.Register(trace.KindList, "List[int]", "", 0)
	size := 0
	for _, step := range script {
		switch step % 4 {
		case 0: // append burst
			n := int(step/4)%60 + 1
			for i := 0; i < n; i++ {
				s.Emit(id, trace.OpInsert, size, size+1)
				size++
			}
		case 1: // full forward scan
			for i := 0; i < size; i++ {
				s.Emit(id, trace.OpRead, i, size)
			}
		case 2: // search burst
			n := int(step/4)%40 + 1
			for i := 0; i < n; i++ {
				s.Emit(id, trace.OpSearch, i%maxInt(size, 1), size)
			}
		case 3: // clear
			s.Emit(id, trace.OpClear, trace.NoIndex, 0)
			size = 0
		}
	}
	profiles := profile.Build(s, rec.Events())
	if len(profiles) == 0 {
		return &profile.Profile{Instance: trace.Instance{ID: id, Kind: trace.KindList}}
	}
	return profiles[0]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func kindsOf(ucs []UseCase) map[Kind]bool {
	m := map[Kind]bool{}
	for _, u := range ucs {
		m[u.Kind] = true
	}
	return m
}

// subset reports whether every kind detected under a is also detected
// under b.
func subset(a, b map[Kind]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Tightening LI's run-length threshold must never create findings.
func TestPropertyTighterLIIsSubset(t *testing.T) {
	loose := Default()
	tight := Default()
	tight.LIMinRunLen = 500
	tight.SAIMinRunLen = 500
	f := func(script []uint8) bool {
		p := randomProfile(script)
		got := kindsOf(Detect(p, tight))
		ref := kindsOf(Detect(p, loose))
		// Only LI/SAI are affected by these knobs.
		return subsetOn(got, ref, LongInsert) && subsetOn(got, ref, SortAfterInsert)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Loosening FLR's pattern-count threshold must never lose FLR findings.
func TestPropertyLooserFLRIsSuperset(t *testing.T) {
	base := Default()
	loose := Default()
	loose.FLRMinPatterns = 1
	f := func(script []uint8) bool {
		p := randomProfile(script)
		got := kindsOf(Detect(p, base))
		sup := kindsOf(Detect(p, loose))
		return subsetOn(got, sup, FrequentLongRead)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Loosening FS's volume threshold must never lose FS findings.
func TestPropertyLooserFSIsSuperset(t *testing.T) {
	base := Default()
	loose := Default()
	loose.FSMinSearchOps = 1
	f := func(script []uint8) bool {
		p := randomProfile(script)
		got := kindsOf(Detect(p, base))
		sup := kindsOf(Detect(p, loose))
		return subsetOn(got, sup, FrequentSearch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func subsetOn(a, b map[Kind]bool, k Kind) bool {
	return !a[k] || b[k]
}

// Detection is deterministic: the same profile always yields the same
// findings, and each kind fires at most once per instance.
func TestPropertyDeterministicAndUnique(t *testing.T) {
	th := Default()
	f := func(script []uint8) bool {
		p := randomProfile(script)
		a := Detect(p, th)
		b := Detect(p, th)
		if len(a) != len(b) {
			return false
		}
		seen := map[Kind]bool{}
		for i := range a {
			if a[i].Kind != b[i].Kind || a[i].Evidence != b[i].Evidence {
				return false
			}
			if seen[a[i].Kind] {
				return false
			}
			seen[a[i].Kind] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Every finding carries the instance it was found on, a non-empty evidence
// string and the kind's canonical recommendation.
func TestPropertyFindingsWellFormed(t *testing.T) {
	th := Default()
	f := func(script []uint8) bool {
		p := randomProfile(script)
		for _, u := range Detect(p, th) {
			if u.Instance.ID != p.Instance.ID {
				return false
			}
			if u.Evidence == "" || u.Recommendation != u.Kind.Action() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
