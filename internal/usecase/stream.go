// Streaming use-case detection: the per-instance state of the eight
// detectors re-expressed as one online reducer. Fold events, closed runs and
// patterns as they arrive; Finish applies the thresholds of detect.go to the
// folded aggregates once the instance kind and stats are known. Every
// aggregate here is order-insensitive (sums, maxes, counters) or depends only
// on run adjacency in stream order (Sort-After-Insert, Write-Without-Read),
// so incremental feeding reproduces the batch answer exactly — the batch
// DetectWithSummary is a thin driver over this reducer.
package usecase

import (
	"dsspy/internal/pattern"
	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// Stream accumulates the bounded per-instance detector state. Zero value is
// not ready — use NewStream (the coverage threshold is consulted during
// pattern folds, not only at Finish).
type Stream struct {
	th Thresholds

	// Implement-Queue: end-affinity counters over indexed events.
	iqInsFront, iqInsBack, iqOutFront, iqOutBack int

	// Stack-Implementation: end-affinity counters with the both-ends special
	// case for accesses to a (nearly) empty structure.
	siInsFront, siInsBack, siDelFront, siDelBack int

	// Long-Insert: events inside / longest insertion pattern. Write patterns
	// are tracked separately so the fixed-size-array resolution (writes count
	// as insertion phases) can happen at Finish, when the kind is known.
	liInsEvents, liInsLongest int
	liWrEvents, liWrLongest   int

	// Frequent-Search: events inside directional read patterns.
	fsDirReadEvents int

	// Frequent-Long-Read: directional read patterns covering enough of the
	// structure.
	flrLongReads int

	// Sort-After-Insert: insert events over the global runs, the immediately
	// preceding run, and the first long-insert-then-sort adjacency.
	saiInsertEvents int
	saiPrevOp       trace.Op
	saiPrevLen      int
	saiHavePrev     bool
	saiMatchedLen   int

	// Write-Without-Read: the last non-Clear run seen so far.
	wwrLastOp  trace.Op
	wwrLastLen int
	wwrSeen    bool
}

// NewStream returns a reducer applying the given thresholds.
func NewStream(th Thresholds) *Stream {
	return &Stream{th: th}
}

// Event folds one access event (any order across threads; the counters are
// order-insensitive).
func (u *Stream) Event(e trace.Event) {
	if e.Index < 0 {
		return
	}
	front := e.Index == 0
	back := atBack(e)
	switch e.Op {
	case trace.OpInsert:
		if front {
			u.iqInsFront++
		} else if back {
			u.iqInsBack++
		}
		if front && e.Size <= 1 {
			// First element of an empty structure is both ends; count it
			// where the rest of the run goes.
			u.siInsBack++
			u.siInsFront++
		} else if front {
			u.siInsFront++
		} else if back {
			u.siInsBack++
		}
	case trace.OpDelete:
		if front {
			u.iqOutFront++
		} else if back {
			u.iqOutBack++
		}
		if front && e.Size == 0 {
			u.siDelFront++
			u.siDelBack++
		} else if front {
			u.siDelFront++
		} else if back {
			u.siDelBack++
		}
	case trace.OpRead:
		if front {
			u.iqOutFront++
		} else if back {
			u.iqOutBack++
		}
	}
}

// FoldBatch folds events [i, j) of a column batch — Event applied per
// element, walking the Op/Index/Size columns in one tight loop (Seq, Instance
// and Thread never matter here). atBack is inlined on the columns; the fuzz
// differential holds the two forms equal.
func (u *Stream) FoldBatch(b *trace.ColumnBatch, i, j int) {
	ops := b.Op[i:j]
	idxs := b.Index[i:j]
	sizes := b.Size[i:j]
	for k := range ops {
		idx := idxs[k]
		if idx < 0 {
			continue
		}
		op, size := ops[k], sizes[k]
		front := idx == 0
		var back bool
		if op == trace.OpDelete {
			back = idx >= size
		} else {
			back = size > 0 && idx >= size-1
		}
		switch op {
		case trace.OpInsert:
			if front {
				u.iqInsFront++
			} else if back {
				u.iqInsBack++
			}
			if front && size <= 1 {
				u.siInsBack++
				u.siInsFront++
			} else if front {
				u.siInsFront++
			} else if back {
				u.siInsBack++
			}
		case trace.OpDelete:
			if front {
				u.iqOutFront++
			} else if back {
				u.iqOutBack++
			}
			if front && size == 0 {
				u.siDelFront++
				u.siDelBack++
			} else if front {
				u.siDelFront++
			} else if back {
				u.siDelBack++
			}
		case trace.OpRead:
			if front {
				u.iqOutFront++
			} else if back {
				u.iqOutBack++
			}
		}
	}
}

// Run folds one closed run of the instance's global (default-options)
// segmentation, in stream order — Sort-After-Insert needs run adjacency and
// Write-Without-Read needs the terminal run.
func (u *Stream) Run(r profile.Run) {
	if r.Op == trace.OpInsert {
		u.saiInsertEvents += r.Len()
	}
	// Adjacency check before updating prev: a sort run matches only the run
	// immediately before it.
	if u.saiMatchedLen == 0 && r.Op == trace.OpSort && u.saiHavePrev &&
		u.saiPrevOp == trace.OpInsert && u.saiPrevLen >= u.th.SAIMinRunLen {
		u.saiMatchedLen = u.saiPrevLen
	}
	u.saiPrevOp, u.saiPrevLen, u.saiHavePrev = r.Op, r.Len(), true

	if r.Op != trace.OpClear {
		u.wwrLastOp, u.wwrLastLen, u.wwrSeen = r.Op, r.Len(), true
	}
}

// Pattern folds one detected pattern (from the per-thread summaries, any
// order; the aggregates are sums and maxes).
func (u *Stream) Pattern(pat pattern.Pattern) {
	n := pat.Len()
	switch pat.Type {
	case pattern.InsertFront, pattern.InsertBack:
		u.liInsEvents += n
		if n > u.liInsLongest {
			u.liInsLongest = n
		}
	case pattern.WriteForward, pattern.WriteBackward:
		u.liWrEvents += n
		if n > u.liWrLongest {
			u.liWrLongest = n
		}
	case pattern.ReadForward, pattern.ReadBackward:
		u.fsDirReadEvents += n
		if pat.Coverage() >= u.th.FLRMinCoverage {
			u.flrLongReads++
		}
	}
}

// Finish applies the detectors to the folded state and returns the use cases
// that fire, in Kind order. ct is the cross-thread contention summary; nil
// (or a single-threaded profile) skips the concurrency-aware detectors. The
// reducer may keep folding afterwards (snapshots finalize a Clone, not the
// live reducer).
func (u *Stream) Finish(inst trace.Instance, st *profile.Stats, ct *profile.Contention) []UseCase {
	if st.Total == 0 {
		return nil
	}
	var out []UseCase
	add := func(k Kind, evidence string) {
		out = append(out, UseCase{
			Kind:           k,
			Instance:       inst,
			Evidence:       evidence,
			Recommendation: k.Action(),
		})
	}

	if ev, ok := u.longInsert(inst, st); ok {
		add(LongInsert, ev)
	}
	if ev, ok := u.implementQueue(inst, st); ok {
		add(ImplementQueue, ev)
	}
	if ev, ok := u.sortAfterInsert(inst, st); ok {
		add(SortAfterInsert, ev)
	}
	if ev, ok := u.frequentSearch(st); ok {
		add(FrequentSearch, ev)
	}
	if ev, ok := u.frequentLongRead(st); ok {
		add(FrequentLongRead, ev)
	}
	if ev, ok := u.insertDeleteFront(inst, st); ok {
		add(InsertDeleteFront, ev)
	}
	if ev, ok := u.stackImplementation(inst, st); ok {
		add(StackImplementation, ev)
	}
	if ev, ok := u.writeWithoutRead(); ok {
		add(WriteWithoutRead, ev)
	}
	if ct != nil && st.Threads > 1 {
		if ev, ok := u.contendedMap(inst, st, ct); ok {
			add(ContendedMap, ev)
		}
		if ev, ok := u.mpscQueue(inst, st, ct); ok {
			add(MPSCQueue, ev)
		}
		if ev, ok := u.readMostlyTable(inst, st); ok {
			add(ReadMostlyTable, ev)
		}
		if ev, ok := u.phaseSeparatedRW(st, ct); ok {
			add(PhaseSeparatedRW, ev)
		}
	}
	return out
}

// KindsMask runs every detector over the folded aggregates and returns a
// bitmask (bit = Kind) of the kinds that currently fire. This is the
// classification fingerprint the adaptive sampling controller compares
// across windows: it needs stability, not evidence, so the (cheap) detector
// booleans are enough — only firing detectors pay for their evidence
// strings. Safe to call on the live reducer from the fold goroutine.
func (u *Stream) KindsMask(inst trace.Instance, st *profile.Stats, ct *profile.Contention) uint16 {
	if st.Total == 0 {
		return 0
	}
	var mask uint16
	if _, ok := u.longInsert(inst, st); ok {
		mask |= 1 << LongInsert
	}
	if _, ok := u.implementQueue(inst, st); ok {
		mask |= 1 << ImplementQueue
	}
	if _, ok := u.sortAfterInsert(inst, st); ok {
		mask |= 1 << SortAfterInsert
	}
	if _, ok := u.frequentSearch(st); ok {
		mask |= 1 << FrequentSearch
	}
	if _, ok := u.frequentLongRead(st); ok {
		mask |= 1 << FrequentLongRead
	}
	if _, ok := u.insertDeleteFront(inst, st); ok {
		mask |= 1 << InsertDeleteFront
	}
	if _, ok := u.stackImplementation(inst, st); ok {
		mask |= 1 << StackImplementation
	}
	if _, ok := u.writeWithoutRead(); ok {
		mask |= 1 << WriteWithoutRead
	}
	if ct != nil && st.Threads > 1 {
		if _, ok := u.contendedMap(inst, st, ct); ok {
			mask |= 1 << ContendedMap
		}
		if _, ok := u.mpscQueue(inst, st, ct); ok {
			mask |= 1 << MPSCQueue
		}
		if _, ok := u.readMostlyTable(inst, st); ok {
			mask |= 1 << ReadMostlyTable
		}
		if _, ok := u.phaseSeparatedRW(st, ct); ok {
			mask |= 1 << PhaseSeparatedRW
		}
	}
	return mask
}

// Clone returns an independent copy, used by snapshot-at-any-time readers.
func (u *Stream) Clone() *Stream {
	out := *u
	return &out
}
