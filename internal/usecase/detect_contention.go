package usecase

import (
	"fmt"

	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// The four concurrency-aware detectors. Like the paper's eight in detect.go
// they read aggregates the Stream reducer folded — plus the cross-thread
// contention summary (profile.Contention) — apply thresholds, and render the
// evidence. All of them are gated on st.Threads > 1 by Finish, so
// single-threaded profiles never reach this file.

// mapLike reports whether the instance is a keyed lookup structure.
func mapLike(k trace.Kind) bool {
	return k == trace.KindDictionary || k == trace.KindHashSet
}

// queueLike reports whether the instance could carry a producer/consumer
// hand-off: an actual queue, or the list/linked-list a queue is hand-rolled
// from (Implement-Queue's territory).
func queueLike(k trace.Kind) bool {
	return k == trace.KindQueue || k == trace.KindList || k == trace.KindLinkedList
}

// contendedMap: a map-like structure whose accesses interleave across
// threads with several concurrent writers — the single-lock bottleneck that
// sharding by key hash removes.
func (u *Stream) contendedMap(inst trace.Instance, st *profile.Stats, ct *profile.Contention) (string, bool) {
	if !mapLike(inst.Kind) {
		return "", false
	}
	if st.Total < u.th.CMMinOps || st.WriterIDs < u.th.CMMinWriters {
		return "", false
	}
	if !ct.Contended() || ct.EpisodeShare() < u.th.CMMinEpisodeShare {
		return "", false
	}
	return fmt.Sprintf("%d threads (%d writing) interleave on the map: %.0f%% of accesses fall inside %d contention episodes (longest %d events)",
		st.Threads, st.WriterIDs, 100*ct.EpisodeShare(), ct.Episodes, ct.MaxEpisode), true
}

// mpscQueue: a queue-shaped structure (two-end affinity like Implement-Queue)
// written by multiple producer threads and drained by a single consumer — or
// the SPMC mirror image — under real interleaving. The single-consumer side
// makes a lock-free ring hand-off applicable.
func (u *Stream) mpscQueue(inst trace.Instance, st *profile.Stats, ct *profile.Contention) (string, bool) {
	if !queueLike(inst.Kind) {
		return "", false
	}
	if st.Total < u.th.MQMinOps || !ct.Contended() {
		return "", false
	}
	var shape string
	switch {
	case ct.Producers >= 2 && ct.Consumers == 1:
		shape = "multi-producer single-consumer"
	case ct.Producers == 1 && ct.Consumers >= 2:
		shape = "single-producer multi-consumer"
	default:
		return "", false
	}
	// Same end-affinity evidence as Implement-Queue: inserts at one end,
	// reads/deletes at the other, in either orientation.
	fi, fo := st.Fraction(u.iqInsBack), st.Fraction(u.iqOutFront)
	if fi+fo <= u.th.MQMinEndFraction {
		fi, fo = st.Fraction(u.iqInsFront), st.Fraction(u.iqOutBack)
	}
	if fi+fo <= u.th.MQMinEndFraction {
		return "", false
	}
	return fmt.Sprintf("%s hand-off (%d producers, %d consumers): %.0f%% of accesses affect the two queue ends across %d contention episodes",
		shape, ct.Producers, ct.Consumers, 100*(fi+fo), ct.Episodes), true
}

// readMostlyTable: a keyed table read concurrently by several threads with
// rare writes — mutual exclusion serializes readers that a reader/writer
// lock would let proceed in parallel.
func (u *Stream) readMostlyTable(inst trace.Instance, st *profile.Stats) (string, bool) {
	if !mapLike(inst.Kind) && inst.Kind != trace.KindSortedList {
		return "", false
	}
	if st.Total < u.th.RMTMinOps || st.ReaderIDs < 2 || st.WriteLike == 0 {
		return "", false
	}
	readFrac := st.Fraction(st.ReadLike)
	if readFrac < u.th.RMTMinReadFraction {
		return "", false
	}
	return fmt.Sprintf("%.0f%% of accesses are reads from %d threads; only %d writes — readers are serialized for nothing",
		100*readFrac, st.ReaderIDs, st.WriteLike), true
}

// phaseSeparatedRW: reads and writes alternate in few long phases and no
// contention episode ever contained a write — the threads already take
// turns, so per-access locking can become a barrier at each phase boundary.
func (u *Stream) phaseSeparatedRW(st *profile.Stats, ct *profile.Contention) (string, bool) {
	if st.Total < u.th.PRWMinOps || st.ReaderIDs < 2 {
		return "", false
	}
	if ct.WriterEpisodes > 0 || !ct.PhaseSeparated(u.th.PRWMaxPhases) {
		return "", false
	}
	return fmt.Sprintf("%d write and %d read phases (longest %d events) with no write ever contended — synchronize at phase boundaries",
		ct.WritePhases, ct.ReadPhases, ct.MaxReadPhase), true
}
