package usecase

import (
	"strings"
	"testing"

	"dsspy/internal/dstruct"
	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

func session() (*trace.Session, *trace.MemRecorder) {
	rec := trace.NewMemRecorder()
	return trace.NewSessionWith(trace.Options{Recorder: rec, CaptureSites: true}), rec
}

func detectOn(t *testing.T, s *trace.Session, rec *trace.MemRecorder) []UseCase {
	t.Helper()
	profiles := profile.Build(s, rec.Events())
	if len(profiles) != 1 {
		t.Fatalf("got %d profiles, want 1", len(profiles))
	}
	return Detect(profiles[0], Default())
}

func kinds(ucs []UseCase) map[Kind]bool {
	m := make(map[Kind]bool)
	for _, u := range ucs {
		m[u.Kind] = true
	}
	return m
}

func TestKindMetadata(t *testing.T) {
	if len(Kinds()) != 12 {
		t.Fatalf("Kinds() = %d", len(Kinds()))
	}
	if len(ParallelKinds()) != 5 {
		t.Fatalf("ParallelKinds() = %d", len(ParallelKinds()))
	}
	if len(ContentionKinds()) != 4 {
		t.Fatalf("ContentionKinds() = %d", len(ContentionKinds()))
	}
	wantShort := map[Kind]string{
		LongInsert: "LI", ImplementQueue: "IQ", SortAfterInsert: "SAI",
		FrequentSearch: "FS", FrequentLongRead: "FLR",
		InsertDeleteFront: "IDF", StackImplementation: "SI", WriteWithoutRead: "WWR",
		ContendedMap: "CM", MPSCQueue: "MQ",
		ReadMostlyTable: "RMT", PhaseSeparatedRW: "PRW",
	}
	for k, short := range wantShort {
		if k.Short() != short {
			t.Errorf("%s.Short() = %q, want %q", k, k.Short(), short)
		}
		if k.Action() == "" {
			t.Errorf("%s has no recommended action", k)
		}
	}
	for _, k := range ParallelKinds() {
		if !k.Parallel() {
			t.Errorf("%s.Parallel() = false", k)
		}
	}
	for _, k := range ContentionKinds() {
		if !k.Parallel() {
			t.Errorf("%s.Parallel() = false", k)
		}
	}
	for _, k := range []Kind{InsertDeleteFront, StackImplementation, WriteWithoutRead} {
		if k.Parallel() {
			t.Errorf("%s.Parallel() = true", k)
		}
	}
	if Kind(99).String() == "" || Kind(99).Short() != "?" || Kind(99).Action() != "" {
		t.Error("out-of-range kind metadata wrong")
	}
}

func TestLongInsertFires(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 500; i++ { // one long insertion phase, 100 % of profile
		l.Add(i)
	}
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[LongInsert] {
		t.Fatalf("Long-Insert did not fire; got %v", ucs)
	}
	for _, u := range ucs {
		if u.Kind == LongInsert {
			if !strings.Contains(u.Evidence, "500") {
				t.Errorf("evidence %q lacks phase length", u.Evidence)
			}
			if u.Recommendation != LongInsert.Action() {
				t.Error("recommendation mismatch")
			}
		}
	}
}

func TestLongInsertNeedsLongPhase(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	// Many short insertion phases (50 each, below the 100 threshold),
	// separated by reads.
	for c := 0; c < 10; c++ {
		for i := 0; i < 50; i++ {
			l.Add(i)
		}
		l.Get(0)
	}
	if kinds(detectOn(t, s, rec))[LongInsert] {
		t.Error("Long-Insert fired without a >=100-event phase")
	}
}

func TestLongInsertNeedsPhaseFraction(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 150; i++ {
		l.Add(i)
	}
	// Dilute: insertions now ~17 % of the profile.
	for c := 0; c < 5; c++ {
		for i := 0; i < l.Len(); i += 2 {
			l.Get(i)
		}
	}
	if kinds(detectOn(t, s, rec))[LongInsert] {
		t.Error("Long-Insert fired with insertion share below 30 %")
	}
}

func TestLongInsertOnArrayFill(t *testing.T) {
	// A sequential write fill of an array is an insertion phase (the
	// Mandelbrot image / GPdotNET fitness-array findings in §V).
	s, rec := session()
	a := dstruct.NewArray[float64](s, 200)
	for i := 0; i < 200; i++ {
		a.Set(i, float64(i))
	}
	if !kinds(detectOn(t, s, rec))[LongInsert] {
		t.Error("Long-Insert did not fire for a sequential array fill")
	}

	// A list written via Set (overwrites, not inserts) must NOT fire.
	s2, rec2 := session()
	l := dstruct.NewListCap[int](s2, 200)
	for i := 0; i < 200; i++ {
		l.Add(i)
	}
	for c := 0; c < 3; c++ {
		for i := 0; i < 200; i++ {
			l.Set(i, i)
		}
	}
	ks := kinds(detectOn(t, s2, rec2))
	if ks[LongInsert] {
		// The Add phase is 200 of 800 events = 25 % < 30 %: must not fire.
		t.Error("Long-Insert fired for overwrite-dominated list profile")
	}
}

func TestImplementQueueFires(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	// FIFO on a list: append at the back, consume at the front.
	for i := 0; i < 200; i++ {
		l.Add(i)
	}
	for l.Len() > 0 {
		l.Get(0)
		l.RemoveAt(0)
	}
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[ImplementQueue] {
		t.Fatalf("Implement-Queue did not fire; got %v", ucs)
	}
}

func TestImplementQueueMirrorOrientation(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	// Inverted FIFO: insert at the front, consume at the back.
	for i := 0; i < 100; i++ {
		l.Insert(0, i)
	}
	for l.Len() > 0 {
		l.RemoveAt(l.Len() - 1)
	}
	if !kinds(detectOn(t, s, rec))[ImplementQueue] {
		t.Error("Implement-Queue did not fire for front-insert/back-delete")
	}
}

func TestImplementQueueNotOnStackUsage(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 100; i++ {
		l.Add(i)
	}
	for l.Len() > 0 {
		l.RemoveAt(l.Len() - 1) // same end: stack, not queue
	}
	ks := kinds(detectOn(t, s, rec))
	if ks[ImplementQueue] {
		t.Error("Implement-Queue fired on common-end usage")
	}
	if !ks[StackImplementation] {
		t.Error("Stack-Implementation did not fire on common-end usage")
	}
}

func TestImplementQueueNotOnArray(t *testing.T) {
	s, rec := session()
	a := dstruct.NewArray[int](s, 10)
	for i := 0; i < 50; i++ {
		a.Set(9, i)
		a.Get(0)
	}
	if kinds(detectOn(t, s, rec))[ImplementQueue] {
		t.Error("Implement-Queue fired on an array (defined for lists)")
	}
}

func TestSortAfterInsertFires(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 200; i++ {
		l.Add(200 - i)
	}
	l.Sort(func(a, b int) bool { return a < b })
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[SortAfterInsert] {
		t.Fatalf("Sort-After-Insert did not fire; got %v", ucs)
	}
}

func TestSortAfterInsertNeedsAdjacency(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 200; i++ {
		l.Add(i)
	}
	for i := 0; i < 150; i++ {
		l.Get(i) // reads between insertion phase and sort
	}
	l.Sort(func(a, b int) bool { return a < b })
	if kinds(detectOn(t, s, rec))[SortAfterInsert] {
		t.Error("Sort-After-Insert fired although the sort does not follow the insertion phase")
	}
}

func TestFrequentSearchFires(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 100; i++ {
		l.Add(i)
	}
	for i := 0; i < 1100; i++ {
		l.Contains(i % 150)
	}
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[FrequentSearch] {
		t.Fatalf("Frequent-Search did not fire; got %v", ucs)
	}
}

func TestFrequentSearchNeedsVolume(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 100; i++ {
		l.Add(i)
	}
	for i := 0; i < 900; i++ { // below the >1000 threshold
		l.Contains(i)
	}
	if kinds(detectOn(t, s, rec))[FrequentSearch] {
		t.Error("Frequent-Search fired below 1000 search operations")
	}
}

func TestFrequentLongReadFires(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 50; i++ {
		l.Add(i)
	}
	// 15 full sequential scans: the priority-queue-on-a-list idiom.
	for c := 0; c < 15; c++ {
		for i := 0; i < l.Len(); i++ {
			l.Get(i)
		}
	}
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[FrequentLongRead] {
		t.Fatalf("Frequent-Long-Read did not fire; got %v", ucs)
	}
}

func TestFrequentLongReadCountsForAll(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 30; i++ {
		l.Add(i)
	}
	sum := 0
	for c := 0; c < 40; c++ {
		l.ForEach(func(v int) { sum += v })
	}
	if !kinds(detectOn(t, s, rec))[FrequentLongRead] {
		t.Error("Frequent-Long-Read did not fire for compound ForAll traversals")
	}
}

func TestFrequentLongReadNeedsCoverage(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 100; i++ {
		l.Add(i)
	}
	// 20 short scans over 10 % of the structure: patterns, but not long.
	for c := 0; c < 20; c++ {
		for i := 0; i < 10; i++ {
			l.Get(i)
		}
	}
	if kinds(detectOn(t, s, rec))[FrequentLongRead] {
		t.Error("Frequent-Long-Read fired for low-coverage read patterns")
	}
}

func TestFrequentLongReadNeedsReadShare(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	// Writes dominate: 12 scans but 3x as many writes.
	for i := 0; i < 20; i++ {
		l.Add(i)
	}
	for c := 0; c < 12; c++ {
		for i := 0; i < l.Len(); i++ {
			l.Get(i)
		}
		for r := 0; r < 3; r++ {
			for i := 0; i < l.Len(); i++ {
				l.Set(i, i)
			}
		}
	}
	if kinds(detectOn(t, s, rec))[FrequentLongRead] {
		t.Error("Frequent-Long-Read fired although reads are under 50 %")
	}
}

func TestInsertDeleteFrontFires(t *testing.T) {
	s, rec := session()
	a := dstruct.NewArray[int](s, 4)
	for c := 0; c < 10; c++ {
		a.InsertAt(0, c)
		a.RemoveAt(0)
	}
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[InsertDeleteFront] {
		t.Fatalf("Insert/Delete-Front did not fire; got %v", ucs)
	}
}

func TestInsertDeleteFrontOnlyArrays(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for c := 0; c < 10; c++ {
		l.Insert(0, c)
		l.RemoveAt(0)
	}
	if kinds(detectOn(t, s, rec))[InsertDeleteFront] {
		t.Error("Insert/Delete-Front fired on a list")
	}
}

func TestStackImplementationFrontVariant(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for c := 0; c < 20; c++ {
		l.Insert(0, c)
	}
	for l.Len() > 0 {
		l.RemoveAt(0)
	}
	if !kinds(detectOn(t, s, rec))[StackImplementation] {
		t.Error("Stack-Implementation did not fire for front-end stack")
	}
}

func TestStackImplementationNeedsBothOps(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 50; i++ {
		l.Add(i)
	}
	if kinds(detectOn(t, s, rec))[StackImplementation] {
		t.Error("Stack-Implementation fired without deletes")
	}
}

func TestWriteWithoutReadFires(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 50; i++ {
		l.Add(i)
	}
	for i := 0; i < l.Len(); i++ {
		l.Get(i)
	}
	// Cleanup: null out every entry at end of life, then clear.
	for i := 0; i < l.Len(); i++ {
		l.Set(i, 0)
	}
	l.Clear()
	ucs := detectOn(t, s, rec)
	if !kinds(ucs)[WriteWithoutRead] {
		t.Fatalf("Write-Without-Read did not fire; got %v", ucs)
	}
}

func TestWriteWithoutReadNotWhenReadAfter(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	for i := 0; i < 50; i++ {
		l.Add(i)
	}
	for i := 0; i < l.Len(); i++ {
		l.Set(i, 0)
	}
	for i := 0; i < l.Len(); i++ {
		l.Get(i) // the writes ARE read afterwards
	}
	if kinds(detectOn(t, s, rec))[WriteWithoutRead] {
		t.Error("Write-Without-Read fired although the writes are read")
	}
}

func TestDetectEmptyProfile(t *testing.T) {
	p := &profile.Profile{}
	if got := Detect(p, Default()); got != nil {
		t.Errorf("Detect(empty) = %v", got)
	}
}

func TestUseCaseString(t *testing.T) {
	u := UseCase{Kind: LongInsert, Instance: trace.Instance{TypeName: "List[int]"}, Evidence: "x"}
	if u.String() == "" {
		t.Error("empty String")
	}
}

// The Figure 3 profile must yield exactly the paper's two use cases:
// Long-Insert and Frequent-Long-Read (§III.B: "This leads to the two use
// cases Long-Insert and Frequent-Long-Read").
func TestFigure3UseCases(t *testing.T) {
	s, rec := session()
	l := dstruct.NewList[int](s)
	const cycles, n = 12, 150
	for c := 0; c < cycles; c++ {
		for i := 0; i < n; i++ {
			l.Add(i)
		}
		for i := 0; i < l.Len(); i++ {
			l.Get(i)
		}
		l.Clear()
	}
	ucs := detectOn(t, s, rec)
	ks := kinds(ucs)
	if !ks[LongInsert] || !ks[FrequentLongRead] {
		t.Fatalf("Figure 3 profile yielded %v; want Long-Insert and Frequent-Long-Read", ucs)
	}
	for _, u := range ucs {
		if u.Kind != LongInsert && u.Kind != FrequentLongRead {
			t.Errorf("unexpected extra use case %v", u)
		}
	}
}
