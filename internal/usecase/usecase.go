// Package usecase implements the paper's eight generic use cases (§III.B):
// statements about how a data structure is used, each with threshold values
// and a recommended action. Five carry parallel potential — Long-Insert,
// Implement-Queue, Sort-After-Insert, Frequent-Search and Frequent-Long-Read
// — and three are sequential optimizations: Insert/Delete-Front,
// Stack-Implementation and Write-Without-Read.
package usecase

import (
	"fmt"

	"dsspy/internal/pattern"
	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// Kind enumerates the eight use cases.
type Kind uint8

const (
	// LongInsert (LI): an insertion pattern from either end of a linear
	// data structure that inserts more than one element, in a profile with
	// frequent insertion phases.
	LongInsert Kind = iota
	// ImplementQueue (IQ): a data structure used like a queue but
	// implemented as a list.
	ImplementQueue
	// SortAfterInsert (SAI): a sort directly after a long insertion phase,
	// so insertion order does not matter.
	SortAfterInsert
	// FrequentSearch (FS): the program often searches for specific
	// elements within a linear data structure.
	FrequentSearch
	// FrequentLongRead (FLR): repeated sequential read patterns over the
	// majority of the elements — a disguised search.
	FrequentLongRead
	// InsertDeleteFront (IDF): inserts/deletes on a fixed-size array cause
	// repeated copy overhead.
	InsertDeleteFront
	// StackImplementation (SI): inserts and deletes always access a common
	// end of a list.
	StackImplementation
	// WriteWithoutRead (WWR): the profile ends with write patterns whose
	// results are never read.
	WriteWithoutRead
	numKinds
)

var kindInfo = [...]struct {
	name, short, action string
	parallel            bool
}{
	LongInsert: {"Long-Insert", "LI",
		"Parallelize the insert operation.", true},
	ImplementQueue: {"Implement-Queue", "IQ",
		"Employ a parallel queue as data container.", true},
	SortAfterInsert: {"Sort-After-Insert", "SAI",
		"The insertion order is not important: parallelize both the insert and the sort phase.", true},
	FrequentSearch: {"Frequent-Search", "FS",
		"Either employ a parallel data structure that is optimized for searches, or parallelize the search operation by splitting the list into smaller chunks and searching them in parallel.", true},
	FrequentLongRead: {"Frequent-Long-Read", "FLR",
		"Check the origin of this access. In case it contains a program loop that looks for a specific element, the program might profit from transforming this operation into a parallel search operation.", true},
	InsertDeleteFront: {"Insert/Delete-Front", "IDF",
		"Insert and delete patterns occur in combination on a fixed-size array; a dynamic data structure like a list might be better suited.", false},
	StackImplementation: {"Stack-Implementation", "SI",
		"Analyze the data structure and think about using a stack implementation.", false},
	WriteWithoutRead: {"Write-Without-Read", "WWR",
		"Check if the write accesses at the end of this profile are necessary; cleanup writes resemble deallocation and should be left to garbage collection.", false},
}

// String returns the paper's use-case name.
func (k Kind) String() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Short returns the paper's abbreviation (LI, IQ, SAI, FS, FLR, IDF, SI, WWR).
func (k Kind) Short() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].short
	}
	return "?"
}

// Parallel reports whether the use case carries parallel potential.
func (k Kind) Parallel() bool {
	return int(k) < len(kindInfo) && kindInfo[k].parallel
}

// Action returns the recommended action for the use case.
func (k Kind) Action() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].action
	}
	return ""
}

// Kinds lists all eight use cases in paper order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParallelKinds lists the five use cases with parallel potential.
func ParallelKinds() []Kind {
	return []Kind{LongInsert, ImplementQueue, SortAfterInsert, FrequentSearch, FrequentLongRead}
}

// UseCase is one detected use case on one instance: the location, the
// evidence that crossed the thresholds, and the recommended action.
type UseCase struct {
	Kind           Kind
	Instance       trace.Instance
	Evidence       string
	Recommendation string
}

func (u UseCase) String() string {
	return fmt.Sprintf("%s on %s %s: %s", u.Kind, u.Instance.TypeName, u.Instance.Label, u.Evidence)
}

// Thresholds carries every tunable the paper states in §III.B, plus the
// handful it leaves implicit (documented at each field).
type Thresholds struct {
	// LIMinPhaseFraction: insertion phases must exceed this share of the
	// profile (paper: >30 % of runtime; we measure event share).
	LIMinPhaseFraction float64
	// LIMinRunLen: an insertion phase is long from this many consecutive
	// access events (paper: 100).
	LIMinRunLen int

	// IQMinEndFraction: reads+writes on the two different ends must exceed
	// this share in sum (paper: >60 %).
	IQMinEndFraction float64
	// IQMinOps: minimum accesses before the queue judgment is made — the
	// paper requires a "high amount of read and write accesses", which a
	// three-event profile is not (implicit).
	IQMinOps int
	// IQMinPerEndFraction: each end must carry at least this share, so a
	// pure insertion profile does not pass as a queue (implicit in the
	// paper's "two different ends").
	IQMinPerEndFraction float64

	// SAIMinPhaseFraction / SAIMinRunLen mirror LI for the insertion phase
	// preceding the sort (paper: >30 %, >100).
	SAIMinPhaseFraction float64
	SAIMinRunLen        int

	// FSMinSearchOps: search operations needed (paper: >1000).
	FSMinSearchOps int
	// FSMinSearchFraction: share of events that are searches or
	// directional reads (paper: ≥2 % Read-Forward/Backward patterns).
	FSMinSearchFraction float64

	// FLRMinPatterns: sequential read patterns needed (paper: >10).
	FLRMinPatterns int
	// FLRMinReadFraction: share of Read/Search access types (paper: 50 %).
	FLRMinReadFraction float64
	// FLRMinCoverage: each pattern must read this share of the structure
	// (paper: 50 %).
	FLRMinCoverage float64

	// IDFMinOps: combined insert+delete events on an array (implicit).
	IDFMinOps int

	// SIMinOps: combined insert+delete events sharing a common end
	// (implicit).
	SIMinOps int

	// WWRMinTrailingWrites: length of the terminal write pattern
	// (implicit).
	WWRMinTrailingWrites int
}

// Default returns the paper's threshold values (§III.B), with the implicit
// ones chosen as documented on Thresholds.
func Default() Thresholds {
	return Thresholds{
		LIMinPhaseFraction:   0.30,
		LIMinRunLen:          100,
		IQMinEndFraction:     0.60,
		IQMinPerEndFraction:  0.05,
		IQMinOps:             20,
		SAIMinPhaseFraction:  0.30,
		SAIMinRunLen:         100,
		FSMinSearchOps:       1000,
		FSMinSearchFraction:  0.02,
		FLRMinPatterns:       10,
		FLRMinReadFraction:   0.50,
		FLRMinCoverage:       0.50,
		IDFMinOps:            6,
		SIMinOps:             10,
		WWRMinTrailingWrites: 3,
	}
}

// Detect runs all eight detectors on one profile and returns the use cases
// that fire, in Kind order.
func Detect(p *profile.Profile, th Thresholds) []UseCase {
	sum := pattern.Summarize(p, pattern.DefaultConfig())
	return DetectWithSummary(p, sum, th)
}

// DetectWithSummary is Detect with a precomputed pattern summary, so callers
// that already summarized (the orchestrator) do not pay twice. It is the
// batch driver over the Stream reducer: one pass over the events, one over
// the cached global runs, one over the summarized patterns.
func DetectWithSummary(p *profile.Profile, sum *pattern.Summary, th Thresholds) []UseCase {
	st := p.Stats()
	if st.Total == 0 {
		return nil
	}
	u := NewStream(th)
	for _, e := range p.Events {
		u.Event(e)
	}
	for _, r := range p.Runs() {
		u.Run(r)
	}
	for _, pat := range sum.Patterns {
		u.Pattern(pat)
	}
	return u.Finish(p.Instance, st)
}
