// Package usecase implements the paper's eight generic use cases (§III.B):
// statements about how a data structure is used, each with threshold values
// and a recommended action. Five carry parallel potential — Long-Insert,
// Implement-Queue, Sort-After-Insert, Frequent-Search and Frequent-Long-Read
// — and three are sequential optimizations: Insert/Delete-Front,
// Stack-Implementation and Write-Without-Read.
//
// Beyond the paper, four concurrency-aware use cases read the per-instance
// cross-thread summary (profile.Contention): Contended-Map, MPSC-Queue,
// Read-Mostly-Table and Phase-Separated-RW. They fire only on instances
// touched by more than one thread, so single-threaded analysis is unchanged.
package usecase

import (
	"fmt"

	"dsspy/internal/pattern"
	"dsspy/internal/profile"
	"dsspy/internal/trace"
)

// Kind enumerates the eight use cases.
type Kind uint8

const (
	// LongInsert (LI): an insertion pattern from either end of a linear
	// data structure that inserts more than one element, in a profile with
	// frequent insertion phases.
	LongInsert Kind = iota
	// ImplementQueue (IQ): a data structure used like a queue but
	// implemented as a list.
	ImplementQueue
	// SortAfterInsert (SAI): a sort directly after a long insertion phase,
	// so insertion order does not matter.
	SortAfterInsert
	// FrequentSearch (FS): the program often searches for specific
	// elements within a linear data structure.
	FrequentSearch
	// FrequentLongRead (FLR): repeated sequential read patterns over the
	// majority of the elements — a disguised search.
	FrequentLongRead
	// InsertDeleteFront (IDF): inserts/deletes on a fixed-size array cause
	// repeated copy overhead.
	InsertDeleteFront
	// StackImplementation (SI): inserts and deletes always access a common
	// end of a list.
	StackImplementation
	// WriteWithoutRead (WWR): the profile ends with write patterns whose
	// results are never read.
	WriteWithoutRead

	// The concurrency-aware use cases extend the paper's eight with
	// detections over the cross-thread contention summary
	// (profile.Contention). They only ever fire on instances touched by
	// more than one thread, so single-threaded reports are unchanged.

	// ContendedMap (CM): a map-like structure under interleaved
	// multi-thread access with several writing threads — lock contention
	// central; shard it by key.
	ContendedMap
	// MPSCQueue (MQ): a queue-shaped structure fed by multiple producers
	// and drained by a single consumer (or the SPMC mirror image).
	MPSCQueue
	// ReadMostlyTable (RMT): a table read concurrently by several threads
	// with rare writes — reader/writer locking beats mutual exclusion.
	ReadMostlyTable
	// PhaseSeparatedRW (PRW): reads and writes alternate in few long
	// phases and writes are never contended — synchronize at phase
	// boundaries, not per access.
	PhaseSeparatedRW
	numKinds
)

var kindInfo = [...]struct {
	name, short, action string
	parallel            bool
}{
	LongInsert: {"Long-Insert", "LI",
		"Parallelize the insert operation.", true},
	ImplementQueue: {"Implement-Queue", "IQ",
		"Employ a parallel queue as data container.", true},
	SortAfterInsert: {"Sort-After-Insert", "SAI",
		"The insertion order is not important: parallelize both the insert and the sort phase.", true},
	FrequentSearch: {"Frequent-Search", "FS",
		"Either employ a parallel data structure that is optimized for searches, or parallelize the search operation by splitting the list into smaller chunks and searching them in parallel.", true},
	FrequentLongRead: {"Frequent-Long-Read", "FLR",
		"Check the origin of this access. In case it contains a program loop that looks for a specific element, the program might profit from transforming this operation into a parallel search operation.", true},
	InsertDeleteFront: {"Insert/Delete-Front", "IDF",
		"Insert and delete patterns occur in combination on a fixed-size array; a dynamic data structure like a list might be better suited.", false},
	StackImplementation: {"Stack-Implementation", "SI",
		"Analyze the data structure and think about using a stack implementation.", false},
	WriteWithoutRead: {"Write-Without-Read", "WWR",
		"Check if the write accesses at the end of this profile are necessary; cleanup writes resemble deallocation and should be left to garbage collection.", false},
	ContendedMap: {"Contended-Map", "CM",
		"Shard the map by key hash so concurrent writers hit disjoint shards instead of one lock.", true},
	MPSCQueue: {"MPSC-Queue", "MQ",
		"Replace the list-backed queue with a bounded multi-producer ring buffer; producers enqueue without blocking each other and the consumer drains in order.", true},
	ReadMostlyTable: {"Read-Mostly-Table", "RMT",
		"Guard the table with a reader/writer lock so concurrent readers proceed in parallel and only the rare writes take the exclusive lock.", true},
	PhaseSeparatedRW: {"Phase-Separated-RW", "PRW",
		"Reads and writes occur in separate phases: parallelize within each phase and synchronize at the phase boundary instead of locking every access.", true},
}

// String returns the paper's use-case name.
func (k Kind) String() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].name
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Short returns the paper's abbreviation (LI, IQ, SAI, FS, FLR, IDF, SI, WWR).
func (k Kind) Short() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].short
	}
	return "?"
}

// Parallel reports whether the use case carries parallel potential.
func (k Kind) Parallel() bool {
	return int(k) < len(kindInfo) && kindInfo[k].parallel
}

// Action returns the recommended action for the use case.
func (k Kind) Action() string {
	if int(k) < len(kindInfo) {
		return kindInfo[k].action
	}
	return ""
}

// Kinds lists all use cases: the paper's eight in paper order, then the
// concurrency-aware four.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParallelKinds lists the paper's five use cases with parallel potential.
// The concurrency-aware kinds are all parallel too but are listed separately
// (ContentionKinds) — the paper's Table IV accounting counts only these five.
func ParallelKinds() []Kind {
	return []Kind{LongInsert, ImplementQueue, SortAfterInsert, FrequentSearch, FrequentLongRead}
}

// ContentionKinds lists the concurrency-aware use cases.
func ContentionKinds() []Kind {
	return []Kind{ContendedMap, MPSCQueue, ReadMostlyTable, PhaseSeparatedRW}
}

// UseCase is one detected use case on one instance: the location, the
// evidence that crossed the thresholds, and the recommended action.
type UseCase struct {
	Kind           Kind
	Instance       trace.Instance
	Evidence       string
	Recommendation string
	// Bound is the sampling-derived detection error bound: 0 for a
	// detection from a full-fidelity stream (exact), >0 when the
	// instance's stream was adaptively sampled (internal/sample). Under
	// Report.Merge bounds only widen.
	Bound float64 `json:",omitempty"`
}

func (u UseCase) String() string {
	return fmt.Sprintf("%s on %s %s: %s", u.Kind, u.Instance.TypeName, u.Instance.Label, u.Evidence)
}

// Confidence is 1 - Bound: 1 for exact detections.
func (u UseCase) Confidence() float64 { return 1 - u.Bound }

// Thresholds carries every tunable the paper states in §III.B, plus the
// handful it leaves implicit (documented at each field).
type Thresholds struct {
	// LIMinPhaseFraction: insertion phases must exceed this share of the
	// profile (paper: >30 % of runtime; we measure event share).
	LIMinPhaseFraction float64
	// LIMinRunLen: an insertion phase is long from this many consecutive
	// access events (paper: 100).
	LIMinRunLen int

	// IQMinEndFraction: reads+writes on the two different ends must exceed
	// this share in sum (paper: >60 %).
	IQMinEndFraction float64
	// IQMinOps: minimum accesses before the queue judgment is made — the
	// paper requires a "high amount of read and write accesses", which a
	// three-event profile is not (implicit).
	IQMinOps int
	// IQMinPerEndFraction: each end must carry at least this share, so a
	// pure insertion profile does not pass as a queue (implicit in the
	// paper's "two different ends").
	IQMinPerEndFraction float64

	// SAIMinPhaseFraction / SAIMinRunLen mirror LI for the insertion phase
	// preceding the sort (paper: >30 %, >100).
	SAIMinPhaseFraction float64
	SAIMinRunLen        int

	// FSMinSearchOps: search operations needed (paper: >1000).
	FSMinSearchOps int
	// FSMinSearchFraction: share of events that are searches or
	// directional reads (paper: ≥2 % Read-Forward/Backward patterns).
	FSMinSearchFraction float64

	// FLRMinPatterns: sequential read patterns needed (paper: >10).
	FLRMinPatterns int
	// FLRMinReadFraction: share of Read/Search access types (paper: 50 %).
	FLRMinReadFraction float64
	// FLRMinCoverage: each pattern must read this share of the structure
	// (paper: 50 %).
	FLRMinCoverage float64

	// IDFMinOps: combined insert+delete events on an array (implicit).
	IDFMinOps int

	// SIMinOps: combined insert+delete events sharing a common end
	// (implicit).
	SIMinOps int

	// WWRMinTrailingWrites: length of the terminal write pattern
	// (implicit).
	WWRMinTrailingWrites int

	// The concurrency-aware thresholds. These are ours, not the paper's —
	// the paper's detectors are interleaving-blind — chosen so that casual
	// cross-thread touches (a handoff, a final read) never fire.

	// CMMinOps: accesses before the contended-map judgment is made.
	CMMinOps int
	// CMMinEpisodeShare: share of events that must fall inside contention
	// episodes.
	CMMinEpisodeShare float64
	// CMMinWriters: distinct writing threads required.
	CMMinWriters int

	// MQMinOps / MQMinEndFraction mirror IQ's volume and end-affinity
	// requirements for the cross-thread producer/consumer shape.
	MQMinOps         int
	MQMinEndFraction float64

	// RMTMinOps / RMTMinReadFraction: volume and read share for the
	// read-mostly table.
	RMTMinOps          int
	RMTMinReadFraction float64

	// PRWMinOps / PRWMaxPhases: volume cap and maximum number of
	// read/write phases for the phase-separated profile.
	PRWMinOps    int
	PRWMaxPhases int
}

// Default returns the paper's threshold values (§III.B), with the implicit
// ones chosen as documented on Thresholds.
func Default() Thresholds {
	return Thresholds{
		LIMinPhaseFraction:   0.30,
		LIMinRunLen:          100,
		IQMinEndFraction:     0.60,
		IQMinPerEndFraction:  0.05,
		IQMinOps:             20,
		SAIMinPhaseFraction:  0.30,
		SAIMinRunLen:         100,
		FSMinSearchOps:       1000,
		FSMinSearchFraction:  0.02,
		FLRMinPatterns:       10,
		FLRMinReadFraction:   0.50,
		FLRMinCoverage:       0.50,
		IDFMinOps:            6,
		SIMinOps:             10,
		WWRMinTrailingWrites: 3,
		CMMinOps:             64,
		CMMinEpisodeShare:    0.25,
		CMMinWriters:         2,
		MQMinOps:             64,
		MQMinEndFraction:     0.60,
		RMTMinOps:            64,
		RMTMinReadFraction:   0.90,
		PRWMinOps:            64,
		PRWMaxPhases:         8,
	}
}

// Detect runs all eight detectors on one profile and returns the use cases
// that fire, in Kind order.
func Detect(p *profile.Profile, th Thresholds) []UseCase {
	sum := pattern.Summarize(p, pattern.DefaultConfig())
	return DetectWithSummary(p, sum, th)
}

// DetectWithSummary is Detect with a precomputed pattern summary, so callers
// that already summarized (the orchestrator) do not pay twice. It is the
// batch driver over the Stream reducer: one pass over the events, one over
// the cached global runs, one over the summarized patterns.
func DetectWithSummary(p *profile.Profile, sum *pattern.Summary, th Thresholds) []UseCase {
	st := p.Stats()
	if st.Total == 0 {
		return nil
	}
	u := NewStream(th)
	for _, e := range p.Events {
		u.Event(e)
	}
	for _, r := range p.Runs() {
		u.Run(r)
	}
	for _, pat := range sum.Patterns {
		u.Pattern(pat)
	}
	// The cross-thread summary is only consulted for multi-thread profiles,
	// so single-threaded batch analysis never pays the contention fold.
	var ct *profile.Contention
	if st.Threads > 1 {
		ct = p.Contention()
	}
	return u.Finish(p.Instance, st, ct)
}
