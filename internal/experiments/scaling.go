package experiments

import (
	"fmt"
	"io"

	"dsspy/internal/apps"
	"dsspy/internal/report"
)

// Speedup-scaling curves: the paper reports single speedup numbers on a
// fixed 8-core machine; this experiment generalizes them to speedup as a
// function of worker count for each app's flagship probe, which is how the
// shape claim transfers to other hosts.

// ScalingPoint is one (workers, speedup) measurement.
type ScalingPoint struct {
	Workers int
	Speedup float64
}

// ScalingCurve measures a probe's region speedup at each worker count,
// against the single-worker run.
func ScalingCurve(app *apps.App, probe int, workers []int, reps int) []ScalingPoint {
	if probe < 0 || probe >= len(app.Probes) {
		return nil
	}
	p := app.Probes[probe]
	if reps < 1 {
		reps = 2
	}
	base := bestOf(reps, p.Seq)
	out := make([]ScalingPoint, 0, len(workers))
	for _, w := range workers {
		w := w
		d := bestOf(reps, func() { p.Par(w) })
		sp := 0.0
		if d > 0 {
			sp = float64(base) / float64(d)
		}
		out = append(out, ScalingPoint{Workers: w, Speedup: sp})
	}
	return out
}

// DefaultScalingWorkers is the worker ladder 1,2,4,...,max (max included).
func DefaultScalingWorkers(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

// Scaling prints the speedup-vs-workers curve for each app's first probe.
func Scaling(w io.Writer, opts Options) error {
	workers := DefaultScalingWorkers(opts.workers())
	headers := []string{"Program / flagship region"}
	for _, wk := range workers {
		headers = append(headers, fmt.Sprintf("%d", wk))
	}
	tb := report.NewTable(headers...)
	for i := 1; i < len(headers); i++ {
		tb.AlignRight(i)
	}
	tb.Title = "Speedup scaling of the flagship probe regions (columns: workers)"
	for _, app := range apps.Apps() {
		if len(app.Probes) == 0 {
			continue
		}
		curve := ScalingCurve(app, 0, workers, opts.reps())
		row := []any{fmt.Sprintf("%s — %s", app.Name, app.Probes[0].Name)}
		for _, pt := range curve {
			row = append(row, report.F2(pt.Speedup))
		}
		tb.AddRow(row...)
	}
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Measured with best-of-%d timing; on a single-core host every column is ~1.00.\n\n", opts.reps())
	return err
}
