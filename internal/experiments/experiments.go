// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has a data function (returning rows for tests
// and tooling) and a printer that emits the same rows the paper reports,
// side by side with the published reference values where they exist.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"dsspy/internal/core"
	"dsspy/internal/corpus"
	"dsspy/internal/report"
	"dsspy/internal/staticscan"
)

// ---------------------------------------------------------------------------
// Table I / Figure 1 — the empirical study.
// ---------------------------------------------------------------------------

// StudyProgramResult is one program's static-scan outcome.
type StudyProgramResult struct {
	Name      string
	Domain    string
	LOC       int
	Dynamic   int
	Arrays    int
	ByType    map[string]int
	WantTotal int
}

// RunStudy generates the 37-program corpus and re-runs the §II.A regex scan
// over it.
func RunStudy() []StudyProgramResult {
	progs := corpus.StaticPrograms()
	types := corpus.TypeAllocation()
	arrays := corpus.ArrayAllocation()
	out := make([]StudyProgramResult, 0, len(progs))
	for _, p := range progs {
		src := corpus.GenerateSource(p, types[p.Name], arrays[p.Name])
		res := staticscan.ScanSource(p.Name+".cs", src)
		byType := map[string]int{}
		for _, in := range res.Instances {
			byType[in.Type]++
		}
		out = append(out, StudyProgramResult{
			Name:      p.Name,
			Domain:    p.Domain,
			LOC:       res.LOC,
			Dynamic:   res.Dynamic(),
			Arrays:    res.Arrays(),
			ByType:    byType,
			WantTotal: p.Instances,
		})
	}
	return out
}

// Table1 aggregates the study per application domain (Table I).
func Table1(w io.Writer) error {
	results := RunStudy()
	instances := map[string]int{}
	loc := map[string]int{}
	progsPer := map[string]int{}
	for _, r := range results {
		instances[r.Domain] += r.Dynamic
		loc[r.Domain] += r.LOC
		progsPer[r.Domain]++
	}
	tb := report.NewTable("Application Domain", "#Programs", "#Instances", "LOC").AlignRight(1, 2, 3)
	tb.Title = "Table I — empirical study: distribution of benchmark programs across domains"
	totalI, totalL, totalP := 0, 0, 0
	for _, d := range corpus.Domains() {
		tb.AddRow(d, progsPer[d], instances[d], loc[d])
		totalI += instances[d]
		totalL += loc[d]
		totalP += progsPer[d]
	}
	tb.AddSeparator()
	tb.AddRow("Total", totalP, totalI, totalL)
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Paper reference: 37 programs, 1,960 dynamic instances, 936,356 LOC.\n\n")
	return err
}

// StudyFindings prints the §II.A prose findings recomputed from the corpus:
// the list share, the list:dictionary ratio, and the member-level class
// statistics.
func StudyFindings(w io.Writer) error {
	progs := corpus.StaticPrograms()
	types := corpus.TypeAllocation()
	arrays := corpus.ArrayAllocation()
	listTotal, dictTotal, dynTotal, arrTotal := 0, 0, 0, 0
	var classes [][]staticscan.ClassInfo
	for _, p := range progs {
		src := corpus.GenerateSource(p, types[p.Name], arrays[p.Name])
		res := staticscan.ScanSource(p.Name+".cs", src)
		for _, in := range res.Instances {
			switch in.Type {
			case "List":
				listTotal++
			case "Dictionary":
				dictTotal++
			}
			if in.Type == "Array" {
				arrTotal++
			} else {
				dynTotal++
			}
		}
		classes = append(classes, staticscan.ScanClasses(p.Name+".cs", src))
	}
	ms := staticscan.AggregateMembers(classes...)
	if _, err := fmt.Fprintf(w, "Empirical-study findings (§II.A), recomputed:\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"  list is the most frequent dynamic data structure: %d of %d instances (%.2f%%; paper: 65.05%%),\n"+
			"  %.2f times the second most frequent, dictionary (%d; paper: 3.94x);\n",
		listTotal, dynTotal, 100*float64(listTotal)/float64(dynTotal),
		float64(listTotal)/float64(dictTotal), dictTotal); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"  lists and arrays account for %.2f%% of all instances (paper: >75%%);\n",
		100*float64(listTotal+arrTotal)/float64(dynTotal+arrTotal)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"  %.1f%% of the corpus' %d classes contain a list member (paper: every third class),\n"+
			"  %.2f times more often than dictionary (paper: seven times).\n\n",
		100*ms.Fraction("List"), ms.Classes, ms.Ratio("List", "Dictionary"))
	return err
}

// Figure1 prints the per-program data-structure occurrence series
// (Figure 1): programs grouped by domain, counts per container type.
func Figure1(w io.Writer) error {
	results := RunStudy()
	// Figure 1 sorts each domain by ascending instance count.
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Domain != results[j].Domain {
			return domainRank(results[i].Domain) < domainRank(results[j].Domain)
		}
		return results[i].Dynamic < results[j].Dynamic
	})
	cols := []string{"List", "Dictionary", "ArrayList", "Stack", "Queue"}
	headers := append([]string{"Program", "Domain", "Σ"}, cols...)
	headers = append(headers, "Rest", "Arrays")
	tb := report.NewTable(headers...).AlignRight(2, 3, 4, 5, 6, 7, 8, 9)
	tb.Title = "Figure 1 — data structure occurrence by program (reconstructed per-type split)"
	typeTotals := map[string]int{}
	for _, r := range results {
		rest := r.Dynamic
		row := []any{r.Name, shortDomain(r.Domain), r.Dynamic}
		for _, c := range cols {
			row = append(row, r.ByType[c])
			rest -= r.ByType[c]
			typeTotals[c] += r.ByType[c]
		}
		typeTotals["Rest"] += rest
		row = append(row, rest, r.Arrays)
		tb.AddRow(row...)
	}
	tb.AddSeparator()
	total := []any{"Σ", "", corpus.TotalDynamic}
	for _, c := range cols {
		total = append(total, typeTotals[c])
	}
	total = append(total, typeTotals["Rest"], corpus.TotalArrays)
	tb.AddRow(total...)
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Paper reference: List Σ1275, Dictionary Σ324, ArrayList Σ192, Stack Σ49, Queue Σ41, Rest Σ79; 785 arrays.\n\n")
	return err
}

func domainRank(d string) int {
	for i, x := range corpus.Domains() {
		if x == d {
			return i
		}
	}
	return len(corpus.Domains())
}

func shortDomain(d string) string {
	switch d {
	case corpus.DomSrch:
		return "Srch"
	case corpus.DomOpt:
		return "Opt"
	case corpus.DomComp:
		return "Comp"
	case corpus.DomVis:
		return "Vis"
	case corpus.DomParser:
		return "Parser"
	case corpus.DomImgLib:
		return "Img lib"
	case corpus.DomGame:
		return "Game"
	case corpus.DomSim:
		return "Simulation"
	case corpus.DomGraphLib:
		return "Graph lib"
	case corpus.DomOffice:
		return "Office"
	case corpus.DomDSLib:
		return "DS lib"
	}
	return d
}

// ---------------------------------------------------------------------------
// Table II — recurring regularities in 15 programs.
// ---------------------------------------------------------------------------

// Table2Row is one pattern-study program outcome.
type Table2Row struct {
	Name         string
	Domain       string
	LOC          int
	Regularities int
	ParallelUCs  int
}

// RunTable2 executes the 15 scripted programs under DSspy.
func RunTable2() []Table2Row {
	d := core.New()
	var rows []Table2Row
	for _, p := range corpus.PatternStudyPrograms() {
		rep := p.Run(d)
		rows = append(rows, Table2Row{
			Name:         p.Name,
			Domain:       p.Domain,
			LOC:          p.LOC,
			Regularities: rep.Regularities(),
			ParallelUCs:  len(rep.ParallelUseCases()),
		})
	}
	return rows
}

// Table2 prints the access-pattern predominance study.
func Table2(w io.Writer) error {
	rows := RunTable2()
	tb := report.NewTable("Application", "Domain", "LOC", "Recurring Regularities", "Parallel Use Cases").
		AlignRight(2, 3, 4)
	tb.Title = "Table II — recurring regularities on common data structures in 15 programs"
	totR, totP, totL := 0, 0, 0
	for _, r := range rows {
		tb.AddRow(r.Name, r.Domain, r.LOC, r.Regularities, r.ParallelUCs)
		totR += r.Regularities
		totP += r.ParallelUCs
		totL += r.LOC
	}
	tb.AddSeparator()
	tb.AddRow("Σ", "", totL, totR, totP)
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Paper reference: 81 regularities, 41 parallel use cases. (The paper's LOC total row prints 72,613; its own per-program column sums to 116,581.)\n\n")
	return err
}

// ---------------------------------------------------------------------------
// Table III — 66 use cases in the use-case study by category.
// ---------------------------------------------------------------------------

// Table3Row is one use-case-study program outcome, by category.
type Table3Row struct {
	Name string
	LI   int
	IQ   int
	SAI  int
	FS   int
	FLR  int
}

// Total returns the row sum.
func (r Table3Row) Total() int { return r.LI + r.IQ + r.SAI + r.FS + r.FLR }

// RunTable3 executes the use-case-study programs under DSspy.
func RunTable3() []Table3Row {
	d := core.New()
	var rows []Table3Row
	for _, p := range corpus.UseCaseStudyPrograms() {
		rep := p.Run(d)
		row := Table3Row{Name: p.Name}
		for _, u := range rep.ParallelUseCases() {
			switch u.Kind.Short() {
			case "LI":
				row.LI++
			case "IQ":
				row.IQ++
			case "SAI":
				row.SAI++
			case "FS":
				row.FS++
			case "FLR":
				row.FLR++
			}
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Total() > rows[j].Total() })
	return rows
}

// Table3 prints the use-case listing by category.
func Table3(w io.Writer) error {
	rows := RunTable3()
	tb := report.NewTable("Application", "Σ", "# LI", "# IQ", "# SAI", "# FS", "# FLR").
		AlignRight(1, 2, 3, 4, 5, 6)
	tb.Title = "Table III — use cases by category (per-cell split reconstructed; totals as published)"
	var sum Table3Row
	for _, r := range rows {
		tb.AddRow(r.Name, r.Total(), r.LI, r.IQ, r.SAI, r.FS, r.FLR)
		sum.LI += r.LI
		sum.IQ += r.IQ
		sum.SAI += r.SAI
		sum.FS += r.FS
		sum.FLR += r.FLR
	}
	tb.AddSeparator()
	tb.AddRow("Σ", sum.Total(), sum.LI, sum.IQ, sum.SAI, sum.FS, sum.FLR)
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Paper reference: 66 use cases — 49 LI (21 programs), 3 IQ (3), 1 SAI (1), 3 FS (2), 10 FLR (8).\n\n")
	return err
}
