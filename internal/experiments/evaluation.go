package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"dsspy/internal/apps"
	"dsspy/internal/core"
	"dsspy/internal/report"
	"dsspy/internal/trace"
	"dsspy/internal/usecase"
)

// Options tunes the measured experiments.
type Options struct {
	// Workers is the parallelism for recommendation-applied code;
	// 0 means GOMAXPROCS.
	Workers int
	// Reps is the number of timing repetitions (best-of). 0 means 3.
	Reps int
	// SpeedupThreshold classifies a probe as a true positive. 0 means 1.05.
	SpeedupThreshold float64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) reps() int {
	if o.Reps > 0 {
		return o.Reps
	}
	return 3
}

func (o Options) threshold() float64 {
	if o.SpeedupThreshold > 0 {
		return o.SpeedupThreshold
	}
	return 1.05
}

// Table4Row is one evaluation program's measured outcome.
type Table4Row struct {
	Name           string
	PaperLOC       int
	RuntimeSec     float64 // plain full-size run
	ProfilingSec   float64 // instrumented run (same size as PlainTwin)
	Slowdown       float64 // instrumented / plain twin
	DataStructures int
	UseCases       int
	TruePositives  int
	Reduction      float64
	Speedup        float64 // plain / parallel, full size
	PaperSlowdown  float64
	PaperReduction float64
	PaperSpeedup   float64
	PaperUseCases  int
	PaperTP        int
	PaperDS        int
}

func bestOf(reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// RunTable4 measures the full evaluation for every app: slowdown, search
// space, precision probes, and end-to-end speedup.
func RunTable4(opts Options) []Table4Row {
	d := core.New()
	var rows []Table4Row
	for _, app := range apps.Apps() {
		// Detection pass.
		rep := d.Run(app.Instrumented)
		ucs := rep.ParallelUseCases()

		// Slowdown: instrumented vs plain twin at the same input size.
		twin := bestOf(opts.reps(), app.PlainTwin)
		instr := bestOf(opts.reps(), func() {
			col := trace.NewAsyncCollector()
			s := trace.NewSessionWith(trace.Options{Recorder: col, CaptureSites: true})
			app.Instrumented(s)
			col.Close()
		})
		slowdown := 0.0
		if twin > 0 {
			slowdown = float64(instr) / float64(twin)
		}

		// End-to-end speedup: plain vs parallel at paper input size.
		plain := bestOf(opts.reps(), func() { app.Plain() })
		parallel := bestOf(opts.reps(), func() { app.Parallel(opts.workers()) })
		speedup := 0.0
		if parallel > 0 {
			speedup = float64(plain) / float64(parallel)
		}

		// Precision: follow each recommended action in isolation. With a
		// single hardware thread no region can genuinely speed up, so the
		// classification is marked unavailable (-1) rather than reporting
		// timer noise as true or false positives.
		tp := -1
		if opts.workers() > 1 {
			tp = 0
			for _, probe := range app.Probes {
				if probe.Measure(opts.workers(), opts.reps()) >= opts.threshold() {
					tp++
				}
			}
		}

		ds := rep.SearchSpace().Total
		reduction := 0.0
		if ds > 0 {
			reduction = 1 - float64(len(ucs))/float64(ds)
		}
		rows = append(rows, Table4Row{
			Name:           app.Name,
			PaperLOC:       app.PaperLOC,
			RuntimeSec:     plain.Seconds(),
			ProfilingSec:   instr.Seconds(),
			Slowdown:       slowdown,
			DataStructures: ds,
			UseCases:       len(ucs),
			TruePositives:  tp,
			Reduction:      reduction,
			Speedup:        speedup,
			PaperSlowdown:  app.PaperSlowdown,
			PaperReduction: app.PaperReduction,
			PaperSpeedup:   app.PaperSpeedup,
			PaperUseCases:  app.WantUseCases,
			PaperTP:        app.WantTruePositives,
			PaperDS:        app.WantDataStructures,
		})
	}
	return rows
}

// Table4 prints the evaluation alongside the paper's reference values.
func Table4(w io.Writer, opts Options) error {
	rows := RunTable4(opts)
	tb := report.NewTable(
		"Name", "LOC", "Runtime[s]", "Profiling[s]", "Slowdown (paper)",
		"DS", "Use Cases (paper)", "Reduction (paper)", "Speedup (paper)",
	).AlignRight(1, 2, 3, 4, 5, 6, 7, 8)
	tb.Title = "Table IV — evaluation of DSspy: slowdown, search-space reduction, precision, speedup"
	var sumDS, sumUC, sumTP int
	var sumSlow, sumSpeed float64
	for _, r := range rows {
		tb.AddRow(
			r.Name,
			r.PaperLOC,
			fmt.Sprintf("%.3f", r.RuntimeSec),
			fmt.Sprintf("%.3f", r.ProfilingSec),
			fmt.Sprintf("%s (%s)", report.F2(r.Slowdown), report.F2(r.PaperSlowdown)),
			r.DataStructures,
			fmt.Sprintf("%s of %d (%d of %d)", tpString(r.TruePositives), r.UseCases, r.PaperTP, r.PaperUseCases),
			fmt.Sprintf("%s (%s)", report.Pct(r.Reduction), report.Pct(r.PaperReduction)),
			fmt.Sprintf("%s (%s)", report.F2(r.Speedup), report.F2(r.PaperSpeedup)),
		)
		sumDS += r.DataStructures
		sumUC += r.UseCases
		if r.TruePositives >= 0 {
			sumTP += r.TruePositives
		} else {
			sumTP = -1
		}
		sumSlow += r.Slowdown
		sumSpeed += r.Speedup
	}
	tb.AddSeparator()
	n := float64(len(rows))
	totalRed := 1 - float64(sumUC)/float64(sumDS)
	tb.AddRow("Total", "", "", "",
		fmt.Sprintf("%s (47.13)", report.F2(sumSlow/n)),
		sumDS,
		fmt.Sprintf("%s of %d (16 of 24)", tpString(sumTP), sumUC),
		fmt.Sprintf("%s (76.92%%)", report.Pct(totalRed)),
		fmt.Sprintf("%s (2.13)", report.F2(sumSpeed/n)),
	)
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"Workers: %d (paper: 8-core AMD FX 8120). On single-core hosts every speedup degenerates to ~1.0;\nthe shape claims (who is parallelizable, who is not) are carried by the probe classification gates in the tests.\n\n",
		opts.workers())
	return err
}

// tpString renders a true-positive count, with -1 meaning "not measurable
// on this host" (single hardware thread).
func tpString(tp int) string {
	if tp < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%d", tp)
}

// Table5 prints the DSspy report for GPdotNET in the paper's Table V layout.
func Table5(w io.Writer) error {
	d := core.New()
	app := apps.ByName("Gpdotnet")
	rep := d.Run(app.Instrumented)
	ucs := rep.ParallelUseCases()
	// Table V orders the findings terminal set first, then population, then
	// selection; instance registration order matches.
	sort.SliceStable(ucs, func(i, j int) bool {
		if ucs[i].Instance.ID != ucs[j].Instance.ID {
			return ucs[i].Instance.ID < ucs[j].Instance.ID
		}
		return ucs[i].Kind > ucs[j].Kind // FLR before LI, like Table V
	})
	if _, err := fmt.Fprintln(w, "Table V — DSspy use cases for GPdotNET"); err != nil {
		return err
	}
	for i, u := range ucs {
		site := u.Instance.Site
		if _, err := fmt.Fprintf(w,
			"Use Case %d\n  Function:       %s\n  Position:       %s:%d\n  Data structure: %s (%q)\n  Use Case:       %s\n\n",
			i+1, site.Function, filepath.Base(site.File), site.Line,
			u.Instance.TypeName, u.Instance.Label, u.Kind,
		); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "Paper reference: 5 use cases — FLR on the terminal-set array, FLR+LI on the population list (.ctor), FLR+LI on the selection array.\n\n")
	return err
}

// Table6Row is one sequential-fraction measurement.
type Table6Row struct {
	Name          string
	SeqMS         float64
	ParMS         float64
	SeqFraction   float64
	PaperFraction float64
}

// RunTable6 measures sequential vs parallelizable runtime fractions.
func RunTable6() []Table6Row {
	refs := map[string]float64{
		"CPU Benchmarks":  0.9429,
		"Gpdotnet":        0.0389,
		"Mandelbrot":      0.0909,
		"WordWheelSolver": 0.2821,
	}
	var rows []Table6Row
	for _, name := range []string{"CPU Benchmarks", "Gpdotnet", "Mandelbrot", "WordWheelSolver"} {
		app := apps.ByName(name)
		seq, par := app.Regions()
		total := seq + par
		frac := 0.0
		if total > 0 {
			frac = float64(seq) / float64(total)
		}
		rows = append(rows, Table6Row{
			Name:          name,
			SeqMS:         float64(seq.Microseconds()) / 1000,
			ParMS:         float64(par.Microseconds()) / 1000,
			SeqFraction:   frac,
			PaperFraction: refs[name],
		})
	}
	return rows
}

// Table6 prints the sequential/parallelizable runtime comparison.
func Table6(w io.Writer) error {
	rows := RunTable6()
	tb := report.NewTable("Name", "Sequential [ms]", "Parallelizable [ms]", "Sequential Fraction (paper)").
		AlignRight(1, 2, 3)
	tb.Title = "Table VI — sequential and parallelizable runtime fractions"
	for _, r := range rows {
		tb.AddRow(r.Name, report.F2(r.SeqMS), report.F2(r.ParMS),
			fmt.Sprintf("%s (%s)", report.Pct(r.SeqFraction), report.Pct(r.PaperFraction)))
	}
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Paper reference: the low CPU-Benchmarks speedup (1.20) is explained by its dominant sequential fraction.\n\n")
	return err
}

// Table7 prints the related-work capability matrix (Table VII) — a
// qualitative table reproduced verbatim.
func Table7(w io.Writer) error {
	cols := []string{
		"Parallel Libraries", "Programming Assistance", "Software Visualization",
		"Data Layout Optimization", "Memory Access Analysis",
		"Data Structure Optimization", "Automatic Parallelization", "This work",
	}
	rows := []struct {
		name  string
		marks []string
	}{
		{"Chronological order of data", []string{"+", "-", "+", "o", "+", "-", "-", "o"}},
		{"Collection of data accesses", []string{"-", "-", "o", "+", "-", "-", "-", "+"}},
		{"Detection of parallel potential", []string{"-", "-", "-", "-", "-", "+", "+", "+"}},
		{"Deduction of use cases", []string{"-", "-", "-", "-", "-", "-", "-", "+"}},
	}
	tb := report.NewTable(append([]string{"Capability"}, cols...)...)
	tb.Title = "Table VII — comparison of related work (as published)"
	for _, r := range rows {
		cells := make([]any, 0, len(r.marks)+1)
		cells = append(cells, r.name)
		for _, m := range r.marks {
			cells = append(cells, m)
		}
		tb.AddRow(cells...)
	}
	_, err := tb.WriteTo(w)
	return err
}

// PrecisionSummary recomputes the headline precision figure: true positives
// over detected use cases.
func PrecisionSummary(rows []Table4Row) (tp, total int, precision float64) {
	for _, r := range rows {
		tp += r.TruePositives
		total += r.UseCases
	}
	if total > 0 {
		precision = float64(tp) / float64(total)
	}
	return tp, total, precision
}

// KindBreakdown tallies detected use cases per kind across the evaluation.
func KindBreakdown() map[usecase.Kind]int {
	d := core.New()
	out := map[usecase.Kind]int{}
	for _, app := range apps.Apps() {
		rep := d.Run(app.Instrumented)
		for k, n := range rep.CountByKind() {
			out[k] += n
		}
	}
	return out
}
