package experiments

import (
	"strings"
	"testing"

	"dsspy/internal/apps"
	"dsspy/internal/usecase"
)

func TestRunStudyScansCorpusBack(t *testing.T) {
	if testing.Short() {
		t.Skip("full 936-kLOC corpus scan in -short mode")
	}
	results := RunStudy()
	if len(results) != 37 {
		t.Fatalf("programs = %d", len(results))
	}
	totalDyn, totalArr, totalLOC := 0, 0, 0
	for _, r := range results {
		if r.Dynamic != r.WantTotal {
			t.Errorf("%s: scanned %d instances, descriptor says %d", r.Name, r.Dynamic, r.WantTotal)
		}
		totalDyn += r.Dynamic
		totalArr += r.Arrays
		totalLOC += r.LOC
	}
	if totalDyn != 1960 {
		t.Errorf("total dynamic = %d, want 1960", totalDyn)
	}
	if totalArr != 785 {
		t.Errorf("total arrays = %d, want 785", totalArr)
	}
	if totalLOC != 936356 {
		t.Errorf("total LOC = %d, want 936356", totalLOC)
	}
}

func TestTable1Output(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus scan in -short mode")
	}
	var sb strings.Builder
	if err := Table1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I", "1960", "936356", "Office software", "DS lib"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestStudyFindingsOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus scan in -short mode")
	}
	var sb strings.Builder
	if err := StudyFindings(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"65.05%", "3.94 times", "classes contain a list member"} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Output(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus scan in -short mode")
	}
	var sb strings.Builder
	if err := Figure1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "dotspatial", "gpdotnet", "1275", "324"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q", want)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	var sb strings.Builder
	if err := Figure2(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 2", "I×10 R×10", "Insert-Back", "Read-Backward"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3Output(t *testing.T) {
	var sb strings.Builder
	if err := Figure3(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 3", "12 Insert-Back", "12 Read-Forward", "Long-Insert", "Frequent-Long-Read"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Reproduction(t *testing.T) {
	rows := RunTable2()
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	totR, totP := 0, 0
	for _, r := range rows {
		totR += r.Regularities
		totP += r.ParallelUCs
	}
	if totR != 81 || totP != 41 {
		t.Errorf("totals = %d regularities, %d parallel; want 81, 41", totR, totP)
	}
	var sb strings.Builder
	if err := Table2(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MidiSheetMusic") {
		t.Error("Table2 output incomplete")
	}
}

func TestTable3Reproduction(t *testing.T) {
	rows := RunTable3()
	var sum Table3Row
	for _, r := range rows {
		sum.LI += r.LI
		sum.IQ += r.IQ
		sum.SAI += r.SAI
		sum.FS += r.FS
		sum.FLR += r.FLR
	}
	if sum.LI != 49 || sum.IQ != 3 || sum.SAI != 1 || sum.FS != 3 || sum.FLR != 10 {
		t.Errorf("column totals = %+v, want 49/3/1/3/10", sum)
	}
	if sum.Total() != 66 {
		t.Errorf("total = %d, want 66", sum.Total())
	}
	var sb strings.Builder
	if err := Table3(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "66") {
		t.Error("Table3 output missing total")
	}
}

func TestTable4Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy in -short mode")
	}
	opts := Options{Reps: 3}
	rows := RunTable4(opts)
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	sumDS, sumUC := 0, 0
	for _, r := range rows {
		if r.UseCases != r.PaperUseCases {
			t.Errorf("%s: detected %d use cases, paper %d", r.Name, r.UseCases, r.PaperUseCases)
		}
		if r.DataStructures != r.PaperDS {
			t.Errorf("%s: %d data structures, paper %d", r.Name, r.DataStructures, r.PaperDS)
		}
		if r.Slowdown <= 1.0 {
			t.Errorf("%s: slowdown %.2f, expected instrumentation to cost something", r.Name, r.Slowdown)
		}
		sumDS += r.DataStructures
		sumUC += r.UseCases
	}
	if sumDS != 104 || sumUC != 24 {
		t.Errorf("totals = %d DS, %d use cases; want 104, 24", sumDS, sumUC)
	}
	red := 1 - float64(sumUC)/float64(sumDS)
	if red < 0.76 || red > 0.78 {
		t.Errorf("overall reduction = %.4f, want 0.7692", red)
	}
	var sb strings.Builder
	if err := Table4(&sb, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "76.92%") {
		t.Error("Table4 output missing paper reference")
	}
}

func TestTable5Shape(t *testing.T) {
	var sb strings.Builder
	if err := Table5(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Use Case 1", "Use Case 5", "terminal set",
		"population (CHPopulation)", "fitness (FitnessProportionateSelection)",
		"Frequent-Long-Read", "Long-Insert", "gpdotnet.go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "Use Case ") != 5 {
		t.Errorf("Table5 has %d use cases, want 5", strings.Count(out, "Use Case "))
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy in -short mode")
	}
	rows := RunTable6()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	frac := map[string]float64{}
	for _, r := range rows {
		if r.SeqMS <= 0 || r.ParMS <= 0 {
			t.Errorf("%s: zero region time", r.Name)
		}
		frac[r.Name] = r.SeqFraction
	}
	// Shape: CPU Benchmarks must dominate; gpdotnet and mandelbrot must be
	// overwhelmingly parallelizable.
	if frac["CPU Benchmarks"] < 0.5 {
		t.Errorf("CPU Benchmarks fraction = %.2f", frac["CPU Benchmarks"])
	}
	if frac["Gpdotnet"] > 0.3 || frac["Mandelbrot"] > 0.3 {
		t.Errorf("gp=%.2f mandel=%.2f, want < 0.3", frac["Gpdotnet"], frac["Mandelbrot"])
	}
	var sb strings.Builder
	if err := Table6(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "94.29%") {
		t.Error("Table6 output missing paper reference")
	}
}

func TestTable7Static(t *testing.T) {
	var sb strings.Builder
	if err := Table7(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"This work", "Deduction of use cases", "Automatic Parallelization"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 output missing %q", want)
		}
	}
}

func TestKindBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every app in -short mode")
	}
	got := KindBreakdown()
	// Across the seven evaluation apps: 13 LI + 11 FLR parallel findings —
	// matching §VII's remark that the main findings come from these two
	// use cases.
	if got[usecase.LongInsert] != 13 {
		t.Errorf("LI = %d, want 13", got[usecase.LongInsert])
	}
	if got[usecase.FrequentLongRead] != 11 {
		t.Errorf("FLR = %d, want 11", got[usecase.FrequentLongRead])
	}
}

func TestScalingCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("timing in -short mode")
	}
	app := apps.ByName("WordWheelSolver")
	curve := ScalingCurve(app, 0, []int{1, 2}, 1)
	if len(curve) != 2 {
		t.Fatalf("curve = %v", curve)
	}
	for _, pt := range curve {
		if pt.Speedup <= 0 {
			t.Errorf("non-positive speedup at %d workers", pt.Workers)
		}
	}
	if got := ScalingCurve(app, 99, []int{1}, 1); got != nil {
		t.Error("out-of-range probe returned a curve")
	}
	if got := DefaultScalingWorkers(8); len(got) != 4 || got[0] != 1 || got[3] != 8 {
		t.Errorf("DefaultScalingWorkers(8) = %v", got)
	}
	if got := DefaultScalingWorkers(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("DefaultScalingWorkers(1) = %v", got)
	}
	var sb strings.Builder
	if err := Scaling(&sb, Options{Workers: 2, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Speedup scaling") {
		t.Error("scaling output incomplete")
	}
}

func TestPrecisionSummary(t *testing.T) {
	rows := []Table4Row{{TruePositives: 2, UseCases: 4}, {TruePositives: 1, UseCases: 2}}
	tp, total, p := PrecisionSummary(rows)
	if tp != 3 || total != 6 || p != 0.5 {
		t.Errorf("summary = %d/%d %.2f", tp, total, p)
	}
	if _, _, p := PrecisionSummary(nil); p != 0 {
		t.Error("empty precision nonzero")
	}
}
