package experiments

import (
	"fmt"
	"io"

	"dsspy/internal/core"
	"dsspy/internal/dstruct"
	"dsspy/internal/trace"
	"dsspy/internal/viz"
)

// Figure2Events produces the exact §II.B snippet's event stream:
//
//	List<int> list = new List<int>(10);
//	for (int i=0; i<10; i++) list.Add(i);
//	for (int i=9; i>=0; i--) Debug.Write(list[i]);
func Figure2Events() (*trace.Session, []trace.Event) {
	rec := trace.NewMemRecorder()
	s := trace.NewSessionWith(trace.Options{Recorder: rec, CaptureSites: true})
	list := dstruct.NewListCap[int](s, 10)
	for i := 0; i < 10; i++ {
		list.Add(i)
	}
	for i := 9; i >= 0; i-- {
		_ = list.Get(i)
	}
	return s, rec.Events()
}

// Figure2 renders the runtime profile of the snippet: ten insertions into a
// fixed-capacity list whose size stays 10, then ten backward reads.
func Figure2(w io.Writer) error {
	s, events := Figure2Events()
	if _, err := fmt.Fprintln(w, "Figure 2 — runtime profile of the fill-then-read-backward list"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, viz.ASCIIChart(events, viz.DefaultChartOptions())); err != nil {
		return err
	}
	rep := core.New().Analyze(s, events)
	pats := rep.Instances[0].Patterns()
	if _, err := fmt.Fprintf(w, "Timeline: %s\nDetected patterns: ", viz.OpTimeline(events)); err != nil {
		return err
	}
	for i, p := range pats {
		sep := ""
		if i > 0 {
			sep = ", "
		}
		if _, err := fmt.Fprintf(w, "%s%s", sep, p); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nPaper reference: Add operations do not grow the fixed-size list; two access phases are visible.\n\n")
	return err
}

// Figure3Events produces the §III.A profile: repeated append-scan-clear
// cycles on one list.
func Figure3Events() (*trace.Session, []trace.Event) {
	rec := trace.NewMemRecorder()
	s := trace.NewSessionWith(trace.Options{Recorder: rec, CaptureSites: true})
	l := dstruct.NewListLabeled[int](s, "producer/scanner")
	const cycles, n = 12, 150
	for c := 0; c < cycles; c++ {
		for i := 0; i < n; i++ {
			l.Add(i)
		}
		for i := 0; i < l.Len(); i++ {
			_ = l.Get(i)
		}
		l.Clear()
	}
	return s, rec.Events()
}

// Figure3 renders the Insert-Back/Read-Forward cycle profile and the two
// use cases it yields.
func Figure3(w io.Writer) error {
	s, events := Figure3Events()
	if _, err := fmt.Fprintln(w, "Figure 3 — index-sequential inserts and reads (12 produce/scan/clear cycles)"); err != nil {
		return err
	}
	if _, err := io.WriteString(w, viz.ASCIIChart(events, viz.DefaultChartOptions())); err != nil {
		return err
	}
	rep := core.New().Analyze(s, events)
	res := rep.Instances[0]
	ib, rf := 0, 0
	for _, p := range res.Patterns() {
		switch p.Type.String() {
		case "Insert-Back":
			ib++
		case "Read-Forward":
			rf++
		}
	}
	if _, err := fmt.Fprintf(w, "Detected: %d Insert-Back and %d Read-Forward patterns.\nUse cases:\n", ib, rf); err != nil {
		return err
	}
	for _, u := range res.UseCases {
		if _, err := fmt.Fprintf(w, "  - %s: %s\n", u.Kind, u.Evidence); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "Paper reference: this profile leads to the two use cases Long-Insert and Frequent-Long-Read.\n\n")
	return err
}
