package dstruct

import (
	"testing"
	"testing/quick"

	"dsspy/internal/trace"
)

// newTestSession returns a session backed by a MemRecorder for inspection.
func newTestSession() (*trace.Session, *trace.MemRecorder) {
	rec := trace.NewMemRecorder()
	return trace.NewSessionWith(Options(rec)), rec
}

// Options builds trace options around rec. Exposed as a helper for sibling
// test files.
func Options(rec trace.Recorder) trace.Options {
	return trace.Options{Recorder: rec, CaptureSites: true}
}

func lastEvent(t *testing.T, rec *trace.MemRecorder) trace.Event {
	t.Helper()
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	return evs[len(evs)-1]
}

func TestListAddEmitsInsertBack(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	for i := 0; i < 5; i++ {
		l.Add(i * 10)
	}
	evs := rec.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Op != trace.OpInsert {
			t.Errorf("event %d op = %s, want Insert", i, e.Op)
		}
		if e.Index != i {
			t.Errorf("event %d index = %d, want %d (back insertion)", i, e.Index, i)
		}
	}
	if l.Len() != 5 {
		t.Errorf("Len = %d, want 5", l.Len())
	}
}

func TestListCapacityAsSize(t *testing.T) {
	// The Figure 2 scenario: a list constructed with capacity 10 reports
	// size 10 for every access, because Add does not grow it.
	s, rec := newTestSession()
	l := NewListCap[int](s, 10)
	for i := 0; i < 10; i++ {
		l.Add(i)
	}
	for _, e := range rec.Events() {
		if e.Size != 10 {
			t.Fatalf("event %v has size %d, want constant capacity 10", e, e.Size)
		}
	}
}

func TestListGetSet(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[string](s)
	l.Add("a")
	l.Add("b")
	if got := l.Get(1); got != "b" {
		t.Errorf("Get(1) = %q", got)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpRead || e.Index != 1 {
		t.Errorf("Get event = %v", e)
	}
	l.Set(0, "z")
	if e := lastEvent(t, rec); e.Op != trace.OpWrite || e.Index != 0 {
		t.Errorf("Set event = %v", e)
	}
	if got := l.Get(0); got != "z" {
		t.Errorf("after Set, Get(0) = %q", got)
	}
}

func TestListInsertShifts(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	l.Add(1)
	l.Add(3)
	l.Insert(1, 2)
	if e := lastEvent(t, rec); e.Op != trace.OpInsert || e.Index != 1 {
		t.Errorf("Insert event = %v", e)
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if got := l.Get(i); got != w {
			t.Errorf("element %d = %d, want %d", i, got, w)
		}
	}
	// Insert at both boundaries.
	l.Insert(0, 0)
	l.Insert(l.Len(), 4)
	if l.Get(0) != 0 || l.Get(l.Len()-1) != 4 {
		t.Error("boundary inserts misplaced")
	}
}

func TestListRemoveAtAndRemove(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	l.AddRange([]int{10, 20, 30, 20})
	l.RemoveAt(0)
	if e := lastEvent(t, rec); e.Op != trace.OpDelete || e.Index != 0 {
		t.Errorf("RemoveAt event = %v", e)
	}
	if l.Len() != 3 || l.Get(0) != 20 {
		t.Errorf("after RemoveAt: len=%d first=%d", l.Len(), l.Get(0))
	}

	if !l.Remove(20) {
		t.Fatal("Remove(20) = false")
	}
	evs := rec.Events()
	n := len(evs)
	if evs[n-2].Op != trace.OpSearch || evs[n-1].Op != trace.OpDelete {
		t.Errorf("Remove emitted %s,%s; want Search,Delete", evs[n-2].Op, evs[n-1].Op)
	}
	if l.Len() != 2 {
		t.Errorf("len after Remove = %d, want 2", l.Len())
	}
	if l.Remove(999) {
		t.Error("Remove(999) = true for absent value")
	}
	if e := lastEvent(t, rec); e.Op != trace.OpSearch || e.Index != trace.NoIndex {
		t.Errorf("failed Remove event = %v, want Search with NoIndex", e)
	}
}

func TestListSearchOps(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	l.AddRange([]int{5, 6, 7})
	if i := l.IndexOf(6); i != 1 {
		t.Errorf("IndexOf(6) = %d", i)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpSearch || e.Index != 1 {
		t.Errorf("IndexOf event = %v", e)
	}
	if !l.Contains(7) || l.Contains(99) {
		t.Error("Contains wrong")
	}
}

func TestListClearRetainsCapacity(t *testing.T) {
	s, rec := newTestSession()
	l := NewListCap[int](s, 8)
	l.AddRange([]int{1, 2, 3})
	l.Clear()
	if e := lastEvent(t, rec); e.Op != trace.OpClear || e.Size != 8 {
		t.Errorf("Clear event = %v, want Clear with size 8 (capacity retained)", e)
	}
	if l.Len() != 0 || l.Cap() != 8 {
		t.Errorf("after Clear: len=%d cap=%d", l.Len(), l.Cap())
	}
}

func TestListSortReverseCopy(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	l.AddRange([]int{3, 1, 2})
	l.Sort(func(a, b int) bool { return a < b })
	if e := lastEvent(t, rec); e.Op != trace.OpSort {
		t.Errorf("Sort event = %v", e)
	}
	if l.Get(0) != 1 || l.Get(2) != 3 {
		t.Error("Sort did not order elements")
	}
	l.Reverse()
	if e := lastEvent(t, rec); e.Op != trace.OpReverse {
		t.Errorf("Reverse event = %v", e)
	}
	if l.Get(0) != 3 {
		t.Error("Reverse did not reverse")
	}
	dst := make([]int, 3)
	if n := l.CopyTo(dst); n != 3 {
		t.Errorf("CopyTo = %d", n)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpCopy {
		t.Errorf("CopyTo event = %v", e)
	}
	cp := l.ToSlice()
	if len(cp) != 3 || cp[0] != 3 {
		t.Errorf("ToSlice = %v", cp)
	}
}

func TestListForEach(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	l.AddRange([]int{1, 2, 3})
	sum := 0
	l.ForEach(func(v int) { sum += v })
	if sum != 6 {
		t.Errorf("sum = %d", sum)
	}
	// ForEach is one compound event, not three reads.
	var forAll, reads int
	for _, e := range rec.Events() {
		switch e.Op {
		case trace.OpForAll:
			forAll++
		case trace.OpRead:
			reads++
		}
	}
	if forAll != 1 || reads != 0 {
		t.Errorf("ForEach emitted forAll=%d reads=%d; want 1, 0", forAll, reads)
	}
}

func TestListEnumerate(t *testing.T) {
	s, rec := newTestSession()
	l := NewList[int](s)
	l.AddRange([]int{10, 20, 30, 40})
	var got []int
	l.Enumerate(func(i int, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 4 || got[0] != 10 || got[3] != 40 {
		t.Errorf("Enumerate = %v", got)
	}
	// Per-element Read events at increasing positions — the foreach
	// profile that forms a Read-Forward pattern.
	var reads []int
	for _, e := range rec.Events() {
		if e.Op == trace.OpRead {
			reads = append(reads, e.Index)
		}
	}
	if len(reads) != 4 || reads[0] != 0 || reads[3] != 3 {
		t.Errorf("read indexes = %v", reads)
	}

	// Early exit stops both the walk and the events.
	rec.Reset()
	var n int
	l.Enumerate(func(i int, v int) bool {
		n++
		return i < 1
	})
	if n != 2 {
		t.Errorf("early-exit visits = %d, want 2", n)
	}
	if rec.Len() != 2 {
		t.Errorf("early-exit events = %d, want 2", rec.Len())
	}
}

func TestListPanicsOnBadIndex(t *testing.T) {
	s, _ := newTestSession()
	l := NewList[int](s)
	l.Add(1)
	for name, f := range map[string]func(){
		"Get(-1)":      func() { l.Get(-1) },
		"Get(1)":       func() { l.Get(1) },
		"Set(5)":       func() { l.Set(5, 0) },
		"RemoveAt(-1)": func() { l.RemoveAt(-1) },
		"Insert(-1)":   func() { l.Insert(-1, 0) },
		"Insert(9)":    func() { l.Insert(9, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestListRegistryMetadata(t *testing.T) {
	s, _ := newTestSession()
	l := NewListLabeled[float64](s, "fitness")
	inst, ok := s.Instance(l.ID())
	if !ok {
		t.Fatal("instance not registered")
	}
	if inst.Kind != trace.KindList {
		t.Errorf("kind = %v", inst.Kind)
	}
	if inst.TypeName != "List[float64]" {
		t.Errorf("type name = %q", inst.TypeName)
	}
	if inst.Label != "fitness" {
		t.Errorf("label = %q", inst.Label)
	}
	if inst.Site.Line == 0 {
		t.Error("call site not captured")
	}
	l.SetLabel("renamed")
	inst, _ = s.Instance(l.ID())
	if inst.Label != "renamed" {
		t.Errorf("label after SetLabel = %q", inst.Label)
	}
}

// Property: a List behaves exactly like a plain slice under a random
// sequence of Add/Insert/Set/RemoveAt operations.
func TestListMatchesSliceModel(t *testing.T) {
	type step struct {
		Op  uint8
		Pos uint16
		Val int32
	}
	f := func(steps []step) bool {
		s, _ := newTestSession()
		l := NewList[int32](s)
		var model []int32
		for _, st := range steps {
			switch st.Op % 4 {
			case 0: // Add
				l.Add(st.Val)
				model = append(model, st.Val)
			case 1: // Insert
				p := int(st.Pos) % (len(model) + 1)
				l.Insert(p, st.Val)
				model = append(model, 0)
				copy(model[p+1:], model[p:])
				model[p] = st.Val
			case 2: // Set
				if len(model) == 0 {
					continue
				}
				p := int(st.Pos) % len(model)
				l.Set(p, st.Val)
				model[p] = st.Val
			case 3: // RemoveAt
				if len(model) == 0 {
					continue
				}
				p := int(st.Pos) % len(model)
				l.RemoveAt(p)
				model = append(model[:p], model[p+1:]...)
			}
		}
		if l.Len() != len(model) {
			return false
		}
		for i, w := range model {
			if l.Get(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: event count equals operation count — every interface call emits
// exactly one event (Remove emits two only when it deletes).
func TestListOneEventPerOperation(t *testing.T) {
	f := func(vals []int32) bool {
		s, rec := newTestSession()
		l := NewList[int32](s)
		ops := 0
		for _, v := range vals {
			l.Add(v)
			ops++
		}
		for i := 0; i < l.Len(); i++ {
			l.Get(i)
			ops++
		}
		return rec.Len() == ops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPlainListParity(t *testing.T) {
	s, _ := newTestSession()
	inst := NewList[int](s)
	plain := NewPlainList[int]()
	for i := 0; i < 50; i++ {
		inst.Add(i)
		plain.Add(i)
	}
	inst.Insert(10, -1)
	plain.Insert(10, -1)
	inst.RemoveAt(0)
	plain.RemoveAt(0)
	inst.Set(5, 99)
	plain.Set(5, 99)
	inst.Sort(func(a, b int) bool { return a < b })
	plain.Sort(func(a, b int) bool { return a < b })
	if inst.Len() != plain.Len() {
		t.Fatalf("len mismatch: %d vs %d", inst.Len(), plain.Len())
	}
	for i := 0; i < plain.Len(); i++ {
		if inst.Get(i) != plain.Get(i) {
			t.Fatalf("element %d mismatch", i)
		}
	}
	if plain.IndexOf(99) != inst.IndexOf(99) {
		t.Error("IndexOf mismatch")
	}
	if plain.Contains(1000) {
		t.Error("PlainList.Contains(1000)")
	}
	plain.Clear()
	if plain.Len() != 0 {
		t.Error("PlainList.Clear")
	}
}

func TestPlainListInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlainList.Insert out of range did not panic")
		}
	}()
	NewPlainList[int]().Insert(1, 0)
}
