package dstruct

import (
	"testing"

	"dsspy/internal/trace"
)

// Zero-allocation guards for the sampled-out fast path: a backed-off
// container access must be a branch plus counter work on the handle — no
// event struct, no interface boxing, no type-name formatting, no aggregate
// spill. The inline-budget half of the guarantee is `make inline-guard`
// (Handle.Drop and agg.fold must stay inlinable); this half pins the
// allocation count at the container call sites the ISSUE names.

// dropAllGate sheds every access with a wide credit span, the no-trace-floor
// configuration of the slowdown gates.
type dropAllGate struct{}

func (dropAllGate) Admit(trace.InstanceID, trace.ThreadID) bool           { return false }
func (dropAllGate) AdmitRun(trace.InstanceID, trace.ThreadID) (bool, int) { return false, 1 << 20 }
func (dropAllGate) Observe(trace.InstanceID, uint64, uint64)              {}

func droppedSession() *trace.Session {
	return trace.NewSessionWith(trace.Options{Recorder: trace.NullRecorder{}, Gate: dropAllGate{}})
}

func TestSampledOutListAddZeroAlloc(t *testing.T) {
	s := droppedSession()
	l := NewList[int](s)
	// Pre-grow the backing array so the measured Adds never reallocate it:
	// the assertion targets the instrumentation layer, not append's
	// amortized growth.
	for i := 0; i < 4096; i++ {
		l.Add(i)
	}
	l.items = l.items[:0]
	if allocs := testing.AllocsPerRun(1000, func() { l.Add(1) }); allocs != 0 {
		t.Fatalf("sampled-out List.Add allocates %.1f per op, want 0", allocs)
	}
}

func TestSampledOutListGetZeroAlloc(t *testing.T) {
	s := droppedSession()
	l := NewList[int](s)
	for i := 0; i < 64; i++ {
		l.Add(i)
	}
	if allocs := testing.AllocsPerRun(1000, func() { _ = l.Get(7) }); allocs != 0 {
		t.Fatalf("sampled-out List.Get allocates %.1f per op, want 0", allocs)
	}
}

func TestSampledOutDictionaryGetZeroAlloc(t *testing.T) {
	s := droppedSession()
	d := NewDictionary[int, int](s)
	for i := 0; i < 64; i++ {
		d.Put(i, i)
	}
	if allocs := testing.AllocsPerRun(1000, func() { _, _ = d.Get(7) }); allocs != 0 {
		t.Fatalf("sampled-out Dictionary.Get allocates %.1f per op, want 0", allocs)
	}
}

// TestTypeNameInterned: constructing many instances of one generic
// instantiation must format the type-name string once, not per instance.
func TestTypeNameInterned(t *testing.T) {
	if got := typeName1[int]("List"); got != "List[int]" {
		t.Fatalf("typeName1 = %q", got)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = typeName1[int]("List") }); allocs != 0 {
		t.Fatalf("interned type name allocates %.1f per lookup, want 0", allocs)
	}
	if got := typeName2[string, int]("Dictionary"); got != "Dictionary[string,int]" {
		t.Fatalf("typeName2 = %q", got)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = typeName2[string, int]("Dictionary") }); allocs != 0 {
		t.Fatalf("interned 2-arg type name allocates %.1f per lookup, want 0", allocs)
	}
}
