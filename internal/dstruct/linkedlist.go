package dstruct

import "dsspy/internal/trace"

// LinkedList is an instrumented doubly linked list modeled on
// LinkedList<T>. It appears in the empirical study with a frequency of
// 0.15 % — rare, but part of the standard container set DSspy observes.
// Positions in events are logical indexes from the front.
type LinkedList[T comparable] struct {
	h     trace.Handle
	front *node[T]
	back  *node[T]
	n     int
}

type node[T any] struct {
	v          T
	prev, next *node[T]
}

// NewLinkedList registers an empty instrumented linked list.
func NewLinkedList[T comparable](s *trace.Session) *LinkedList[T] {
	l := &LinkedList[T]{}
	s.InitHandle(&l.h, s.Register(trace.KindLinkedList, typeName1[T]("LinkedList"), "", 1))
	return l
}

// ID returns the registry id of this instance.
func (l *LinkedList[T]) ID() trace.InstanceID { return l.h.ID() }

// Len returns the number of elements (no event).
func (l *LinkedList[T]) Len() int { return l.n }

// AddFirst prepends v (Insert at the front end).
func (l *LinkedList[T]) AddFirst(v T) {
	nd := &node[T]{v: v, next: l.front}
	if l.front != nil {
		l.front.prev = nd
	} else {
		l.back = nd
	}
	l.front = nd
	l.n++
	if !l.h.Drop(trace.OpInsert, 0) {
		l.h.Emit(trace.OpInsert, 0, l.n)
	}
}

// AddLast appends v (Insert at the back end).
func (l *LinkedList[T]) AddLast(v T) {
	nd := &node[T]{v: v, prev: l.back}
	if l.back != nil {
		l.back.next = nd
	} else {
		l.front = nd
	}
	l.back = nd
	l.n++
	if !l.h.Drop(trace.OpInsert, l.n-1) {
		l.h.Emit(trace.OpInsert, l.n-1, l.n)
	}
}

// RemoveFirst removes and returns the front element (Delete at front).
func (l *LinkedList[T]) RemoveFirst() (T, bool) {
	var zero T
	if l.front == nil {
		return zero, false
	}
	nd := l.front
	l.front = nd.next
	if l.front != nil {
		l.front.prev = nil
	} else {
		l.back = nil
	}
	l.n--
	if !l.h.Drop(trace.OpDelete, 0) {
		l.h.Emit(trace.OpDelete, 0, l.n)
	}
	return nd.v, true
}

// RemoveLast removes and returns the back element (Delete at back).
func (l *LinkedList[T]) RemoveLast() (T, bool) {
	var zero T
	if l.back == nil {
		return zero, false
	}
	nd := l.back
	l.back = nd.prev
	if l.back != nil {
		l.back.next = nil
	} else {
		l.front = nil
	}
	l.n--
	if !l.h.Drop(trace.OpDelete, l.n) {
		l.h.Emit(trace.OpDelete, l.n, l.n)
	}
	return nd.v, true
}

// First returns the front element without removing it (Read at front).
func (l *LinkedList[T]) First() (T, bool) {
	var zero T
	if l.front == nil {
		return zero, false
	}
	if !l.h.Drop(trace.OpRead, 0) {
		l.h.Emit(trace.OpRead, 0, l.n)
	}
	return l.front.v, true
}

// Last returns the back element without removing it (Read at back).
func (l *LinkedList[T]) Last() (T, bool) {
	var zero T
	if l.back == nil {
		return zero, false
	}
	if !l.h.Drop(trace.OpRead, l.n-1) {
		l.h.Emit(trace.OpRead, l.n-1, l.n)
	}
	return l.back.v, true
}

// Contains scans for v from the front (one Search event).
func (l *LinkedList[T]) Contains(v T) bool {
	i := 0
	for nd := l.front; nd != nil; nd = nd.next {
		if nd.v == v {
			if !l.h.Drop(trace.OpSearch, i) {
				l.h.Emit(trace.OpSearch, i, l.n)
			}
			return true
		}
		i++
	}
	if !l.h.Drop(trace.OpSearch, trace.NoIndex) {
		l.h.Emit(trace.OpSearch, trace.NoIndex, l.n)
	}
	return false
}

// Clear removes all elements (one Clear event).
func (l *LinkedList[T]) Clear() {
	l.front, l.back, l.n = nil, nil, 0
	if !l.h.Drop(trace.OpClear, trace.NoIndex) {
		l.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}

// ForEach applies f front-to-back (one ForAll event).
func (l *LinkedList[T]) ForEach(f func(v T)) {
	if !l.h.Drop(trace.OpForAll, trace.NoIndex) {
		l.h.Emit(trace.OpForAll, trace.NoIndex, l.n)
	}
	for nd := l.front; nd != nil; nd = nd.next {
		f(nd.v)
	}
}
