package dstruct

import (
	"testing"
	"testing/quick"

	"dsspy/internal/trace"
)

func TestSortedSetOrderAndUniqueness(t *testing.T) {
	s, rec := newTestSession()
	ss := NewSortedSet[int](s)
	for _, v := range []int{5, 1, 3, 5, 1} {
		ss.Add(v)
	}
	if ss.Len() != 3 {
		t.Fatalf("Len = %d, want 3 unique members", ss.Len())
	}
	want := []int{1, 3, 5}
	for i, w := range want {
		if got := ss.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if v, ok := ss.Min(); !ok || v != 1 {
		t.Errorf("Min = %d, %v", v, ok)
	}
	if v, ok := ss.Max(); !ok || v != 5 {
		t.Errorf("Max = %d, %v", v, ok)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpRead || e.Index != 2 {
		t.Errorf("Max event = %v", e)
	}
}

func TestSortedSetMembership(t *testing.T) {
	s, rec := newTestSession()
	ss := NewSortedSet[string](s)
	ss.Add("b")
	ss.Add("a")
	if !ss.Contains("a") || ss.Contains("z") {
		t.Error("Contains wrong")
	}
	if e := lastEvent(t, rec); e.Op != trace.OpSearch || e.Index != trace.NoIndex {
		t.Errorf("failed search event = %v", e)
	}
	if !ss.Remove("a") || ss.Remove("a") {
		t.Error("Remove wrong")
	}
	if ss.Len() != 1 {
		t.Errorf("Len = %d", ss.Len())
	}
}

func TestSortedSetRange(t *testing.T) {
	s, _ := newTestSession()
	ss := NewSortedSet[int](s)
	for i := 0; i < 10; i++ {
		ss.Add(i * 2) // 0,2,...,18
	}
	var got []int
	ss.Range(3, 9, func(v int) { got = append(got, v) })
	want := []int{4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestSortedSetEmptyAndPanics(t *testing.T) {
	s, _ := newTestSession()
	ss := NewSortedSet[int](s)
	if _, ok := ss.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := ss.Max(); ok {
		t.Error("Max on empty")
	}
	ss.Add(1)
	ss.Clear()
	if ss.Len() != 0 {
		t.Error("Clear")
	}
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	ss.At(0)
}

// Property: SortedSet behaves like a sorted deduplicated slice.
func TestSortedSetModel(t *testing.T) {
	f := func(vals []int16) bool {
		s, _ := newTestSession()
		ss := NewSortedSet[int16](s)
		model := map[int16]bool{}
		for _, v := range vals {
			ss.Add(v)
			model[v] = true
		}
		if ss.Len() != len(model) {
			return false
		}
		prev := int16(-32768)
		for i := 0; i < ss.Len(); i++ {
			v := ss.At(i)
			if !model[v] || (i > 0 && v <= prev) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestArrayListBasics(t *testing.T) {
	s, rec := newTestSession()
	al := NewArrayList(s)
	al.Add(1)
	al.Add("two")
	al.Add(3.0)
	if al.Len() != 3 {
		t.Fatalf("Len = %d", al.Len())
	}
	if got := al.Get(1); got != "two" {
		t.Errorf("Get(1) = %v", got)
	}
	al.Set(0, 10)
	if e := lastEvent(t, rec); e.Op != trace.OpWrite || e.Index != 0 {
		t.Errorf("Set event = %v", e)
	}
	if i := al.IndexOf("two"); i != 1 {
		t.Errorf("IndexOf = %d", i)
	}
	if i := al.IndexOf("absent"); i != -1 {
		t.Errorf("IndexOf absent = %d", i)
	}
	al.RemoveAt(0)
	if al.Len() != 2 || al.Get(0) != "two" {
		t.Error("RemoveAt")
	}
	al.Clear()
	if al.Len() != 0 {
		t.Error("Clear")
	}
	inst, _ := s.Instance(al.ID())
	if inst.Kind != trace.KindList || inst.TypeName != "ArrayList" {
		t.Errorf("registry = %+v", inst)
	}
}

func TestArrayListUncomparableSearch(t *testing.T) {
	s, _ := newTestSession()
	al := NewArrayList(s)
	al.Add([]int{1, 2}) // uncomparable dynamic type
	al.Add(5)
	// Searching for an uncomparable value must not panic.
	if i := al.IndexOf([]int{1, 2}); i != -1 {
		t.Errorf("IndexOf(slice) = %d, want -1", i)
	}
	if i := al.IndexOf(5); i != -1 && i != 1 {
		t.Errorf("IndexOf(5) = %d", i)
	}
}

func TestArrayListPanics(t *testing.T) {
	s, _ := newTestSession()
	al := NewArrayList(s)
	for name, f := range map[string]func(){
		"Get":      func() { al.Get(0) },
		"Set":      func() { al.Set(-1, 0) },
		"RemoveAt": func() { al.RemoveAt(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
