package dstruct

import (
	"fmt"

	"dsspy/internal/trace"
)

// Array is an instrumented fixed-size array. Together with List, arrays
// account for more than 75 % of all data-structure instances in the paper's
// study, and DSspy implements its automatic analysis exactly for the two.
//
// Fixed size is the defining property: growing an Array requires Resize,
// which allocates a new backing store and copies every element — the copy
// overhead the Insert/Delete-Front use case warns about. InsertAt/RemoveAt
// model "array used like a list" (shift + resize), which is what triggers
// that use case.
type Array[T comparable] struct {
	h     trace.Handle
	items []T
}

// NewArray registers an instrumented array of the given length.
func NewArray[T comparable](s *trace.Session, length int) *Array[T] {
	return newArray[T](s, length, "")
}

// NewArrayLabeled registers an instrumented array carrying a semantic label.
func NewArrayLabeled[T comparable](s *trace.Session, length int, label string) *Array[T] {
	return newArray[T](s, length, label)
}

func newArray[T comparable](s *trace.Session, length int, label string) *Array[T] {
	if length < 0 {
		panic(fmt.Sprintf("dstruct: negative array length %d", length))
	}
	a := &Array[T]{items: make([]T, length)}
	s.InitHandle(&a.h, s.Register(trace.KindArray, typeName1[T]("Array"), label, 2))
	return a
}

// ID returns the registry id of this instance.
func (a *Array[T]) ID() trace.InstanceID { return a.h.ID() }

// SetLabel attaches a semantic label to the instance.
func (a *Array[T]) SetLabel(label string) { a.h.Session().SetLabel(a.h.ID(), label) }

// Len returns the array length (no event).
func (a *Array[T]) Len() int { return len(a.items) }

// Get returns the element at i (one Read event). The sampled-out body is
// kept to the inlined credit test plus the bounds-checked load; the admitted
// path — formatted index check and Emit — lives in getSlow, off the floor.
func (a *Array[T]) Get(i int) T {
	if a.h.Drop(trace.OpRead, i) {
		return a.items[i]
	}
	return a.getSlow(i)
}

func (a *Array[T]) getSlow(i int) T {
	a.checkIndex(i)
	a.h.Emit(trace.OpRead, i, len(a.items))
	return a.items[i]
}

// Set replaces the element at i (one Write event).
func (a *Array[T]) Set(i int, v T) {
	if a.h.Drop(trace.OpWrite, i) {
		a.items[i] = v
		return
	}
	a.setSlow(i, v)
}

func (a *Array[T]) setSlow(i int, v T) {
	a.checkIndex(i)
	a.items[i] = v
	a.h.Emit(trace.OpWrite, i, len(a.items))
}

// Fill writes v into every position (one ForAll event — Array.Fill is a
// whole-structure operation).
func (a *Array[T]) Fill(v T) {
	for i := range a.items {
		a.items[i] = v
	}
	if !a.h.Drop(trace.OpForAll, trace.NoIndex) {
		a.h.Emit(trace.OpForAll, trace.NoIndex, len(a.items))
	}
}

// IndexOf scans for v (one Search event); -1 when absent.
func (a *Array[T]) IndexOf(v T) int {
	found := -1
	for i, x := range a.items {
		if x == v {
			found = i
			break
		}
	}
	if !a.h.Drop(trace.OpSearch, found) {
		a.h.Emit(trace.OpSearch, found, len(a.items))
	}
	return found
}

// Contains reports whether v occurs (one Search event).
func (a *Array[T]) Contains(v T) bool { return a.IndexOf(v) >= 0 }

// Resize reallocates the array to the new length, copying the retained
// prefix. It emits Resize plus the Copy that makes resizing arrays
// expensive.
func (a *Array[T]) Resize(n int) {
	if n < 0 {
		panic(fmt.Sprintf("dstruct: negative array length %d", n))
	}
	next := make([]T, n)
	copy(next, a.items)
	a.items = next
	if !a.h.Drop(trace.OpResize, trace.NoIndex) {
		a.h.Emit(trace.OpResize, trace.NoIndex, n)
	}
	if !a.h.Drop(trace.OpCopy, trace.NoIndex) {
		a.h.Emit(trace.OpCopy, trace.NoIndex, n)
	}
}

// InsertAt grows the array by one and shifts elements right of i — the
// "array used like a dynamic list" anti-pattern. Emits Insert plus the Copy
// for the shift/reallocation.
func (a *Array[T]) InsertAt(i int, v T) {
	if i < 0 || i > len(a.items) {
		panic(fmt.Sprintf("dstruct: Array.InsertAt index %d out of range [0,%d]", i, len(a.items)))
	}
	next := make([]T, len(a.items)+1)
	copy(next, a.items[:i])
	next[i] = v
	copy(next[i+1:], a.items[i:])
	a.items = next
	if !a.h.Drop(trace.OpInsert, i) {
		a.h.Emit(trace.OpInsert, i, len(a.items))
	}
	if !a.h.Drop(trace.OpCopy, trace.NoIndex) {
		a.h.Emit(trace.OpCopy, trace.NoIndex, len(a.items))
	}
}

// RemoveAt shrinks the array by one, shifting elements left. Emits Delete
// plus the Copy for the shift/reallocation.
func (a *Array[T]) RemoveAt(i int) {
	a.checkIndex(i)
	next := make([]T, len(a.items)-1)
	copy(next, a.items[:i])
	copy(next[i:], a.items[i+1:])
	a.items = next
	if !a.h.Drop(trace.OpDelete, i) {
		a.h.Emit(trace.OpDelete, i, len(a.items))
	}
	if !a.h.Drop(trace.OpCopy, trace.NoIndex) {
		a.h.Emit(trace.OpCopy, trace.NoIndex, len(a.items))
	}
}

// CopyTo copies the elements into dst (one Copy event).
func (a *Array[T]) CopyTo(dst []T) int {
	n := copy(dst, a.items)
	if !a.h.Drop(trace.OpCopy, trace.NoIndex) {
		a.h.Emit(trace.OpCopy, trace.NoIndex, len(a.items))
	}
	return n
}

// Unwrap exposes the backing slice without emitting events, for
// recommendation-applied parallel code.
func (a *Array[T]) Unwrap() []T { return a.items }

func (a *Array[T]) checkIndex(i int) {
	if i < 0 || i >= len(a.items) {
		panic(fmt.Sprintf("dstruct: Array index %d out of range [0,%d)", i, len(a.items)))
	}
}
