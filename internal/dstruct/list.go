package dstruct

import (
	"fmt"
	"sort"

	"dsspy/internal/trace"
)

// List is an instrumented dynamic array modeled on System.Collections.
// Generic.List<T>: a growable container with positional access, the most
// frequently used dynamic data structure in the paper's empirical study
// (65.05 % of all instances). Every interface method emits one access event.
//
// A List is not safe for concurrent mutation; like its .NET counterpart it
// expects external synchronization. Concurrent profiling of distinct lists
// is safe because sessions are concurrency-safe.
type List[T comparable] struct {
	h       trace.Handle
	items   []T
	initCap int
}

// defaultCapacity mirrors .NET's initial List capacity after the first Add.
const defaultCapacity = 4

// NewList registers an empty instrumented list with the session.
func NewList[T comparable](s *trace.Session) *List[T] {
	return newList[T](s, 0, "")
}

// NewListCap registers an instrumented list with a preallocated capacity,
// like `new List<T>(capacity)`. The event Size reflects this capacity
// immediately, matching the Figure 2 discussion.
func NewListCap[T comparable](s *trace.Session, capacity int) *List[T] {
	return newList[T](s, capacity, "")
}

// NewListLabeled registers an instrumented list carrying a semantic label
// that appears in reports.
func NewListLabeled[T comparable](s *trace.Session, label string) *List[T] {
	return newList[T](s, 0, label)
}

func newList[T comparable](s *trace.Session, capacity int, label string) *List[T] {
	l := &List[T]{
		items:   make([]T, 0, capacity),
		initCap: capacity,
	}
	s.InitHandle(&l.h, s.Register(trace.KindList, typeName1[T]("List"), label, 2))
	return l
}

// ID returns the registry id of this instance.
func (l *List[T]) ID() trace.InstanceID { return l.h.ID() }

// SetLabel attaches a semantic label to the instance.
func (l *List[T]) SetLabel(label string) { l.h.Session().SetLabel(l.h.ID(), label) }

// size reports the figure the paper charts as the grey background bar. The
// two figures pin it down: Figure 2 shows a list constructed with capacity
// 10 whose size stays 10 while Add fills it, and Figure 3 shows the size of
// a default-constructed list tracking the element count so that insertions
// overlap the size line. Both hold for max(count, initial capacity).
func (l *List[T]) size() int {
	if len(l.items) > l.initCap {
		return len(l.items)
	}
	return l.initCap
}

// Len returns the number of elements. Len itself is not an element access
// and emits no event, like Count in .NET.
func (l *List[T]) Len() int { return len(l.items) }

// Cap returns the current capacity.
func (l *List[T]) Cap() int { return cap(l.items) }

// Add appends v, emitting an Insert event at the back.
func (l *List[T]) Add(v T) {
	l.items = append(l.items, v)
	if l.h.Drop(trace.OpInsert, len(l.items)-1) {
		return
	}
	l.h.Emit(trace.OpInsert, len(l.items)-1, l.size())
}

// AddRange appends all values, one Insert event each, modeling the
// element-wise insertion profile of AddRange.
func (l *List[T]) AddRange(vs []T) {
	for _, v := range vs {
		l.Add(v)
	}
}

// Insert places v at position i, shifting subsequent elements right.
// It panics if i is out of range [0, Len()].
func (l *List[T]) Insert(i int, v T) {
	if i < 0 || i > len(l.items) {
		panic(fmt.Sprintf("dstruct: List.Insert index %d out of range [0,%d]", i, len(l.items)))
	}
	var zero T
	l.items = append(l.items, zero)
	copy(l.items[i+1:], l.items[i:])
	l.items[i] = v
	if !l.h.Drop(trace.OpInsert, i) {
		l.h.Emit(trace.OpInsert, i, l.size())
	}
}

// Get returns the element at i, emitting a Read event. It panics on
// out-of-range indexes, like the C# indexer throws. The sampled-out body is
// kept to the inlined credit test plus the bounds-checked load; everything
// the admitted path needs — the formatted index check, the size figure, the
// Emit — lives in getSlow, off the floor.
func (l *List[T]) Get(i int) T {
	if l.h.Drop(trace.OpRead, i) {
		return l.items[i]
	}
	return l.getSlow(i)
}

func (l *List[T]) getSlow(i int) T {
	l.checkIndex(i)
	l.h.Emit(trace.OpRead, i, l.size())
	return l.items[i]
}

// Set replaces the element at i, emitting a Write event.
func (l *List[T]) Set(i int, v T) {
	if l.h.Drop(trace.OpWrite, i) {
		l.items[i] = v
		return
	}
	l.setSlow(i, v)
}

func (l *List[T]) setSlow(i int, v T) {
	l.checkIndex(i)
	l.items[i] = v
	l.h.Emit(trace.OpWrite, i, l.size())
}

// RemoveAt deletes the element at i, emitting a Delete event.
func (l *List[T]) RemoveAt(i int) {
	l.checkIndex(i)
	copy(l.items[i:], l.items[i+1:])
	l.items = l.items[:len(l.items)-1]
	if !l.h.Drop(trace.OpDelete, i) {
		l.h.Emit(trace.OpDelete, i, l.size())
	}
}

// Remove deletes the first occurrence of v. The scan is one compound Search
// event; a successful removal additionally emits the Delete. It reports
// whether an element was removed.
func (l *List[T]) Remove(v T) bool {
	i := l.indexOf(v)
	if !l.h.Drop(trace.OpSearch, i) {
		l.h.Emit(trace.OpSearch, i, l.size())
	}
	if i < 0 {
		return false
	}
	copy(l.items[i:], l.items[i+1:])
	l.items = l.items[:len(l.items)-1]
	if !l.h.Drop(trace.OpDelete, i) {
		l.h.Emit(trace.OpDelete, i, l.size())
	}
	return true
}

// IndexOf returns the position of the first occurrence of v, or -1.
// The scan is one compound Search event.
func (l *List[T]) IndexOf(v T) int {
	i := l.indexOf(v)
	if !l.h.Drop(trace.OpSearch, i) {
		l.h.Emit(trace.OpSearch, i, l.size())
	}
	return i
}

// Contains reports whether v occurs in the list (one Search event).
func (l *List[T]) Contains(v T) bool {
	i := l.indexOf(v)
	if !l.h.Drop(trace.OpSearch, i) {
		l.h.Emit(trace.OpSearch, i, l.size())
	}
	return i >= 0
}

func (l *List[T]) indexOf(v T) int {
	for i, x := range l.items {
		if x == v {
			return i
		}
	}
	return -1
}

// Clear removes all elements (one Clear event). Capacity is retained,
// as in .NET.
func (l *List[T]) Clear() {
	l.items = l.items[:0]
	if !l.h.Drop(trace.OpClear, trace.NoIndex) {
		l.h.Emit(trace.OpClear, trace.NoIndex, l.size())
	}
}

// Sort orders the elements by less (one Sort event).
func (l *List[T]) Sort(less func(a, b T) bool) {
	sort.SliceStable(l.items, func(i, j int) bool { return less(l.items[i], l.items[j]) })
	if !l.h.Drop(trace.OpSort, trace.NoIndex) {
		l.h.Emit(trace.OpSort, trace.NoIndex, l.size())
	}
}

// Reverse reverses the element order in place (one Reverse event).
func (l *List[T]) Reverse() {
	for i, j := 0, len(l.items)-1; i < j; i, j = i+1, j-1 {
		l.items[i], l.items[j] = l.items[j], l.items[i]
	}
	if !l.h.Drop(trace.OpReverse, trace.NoIndex) {
		l.h.Emit(trace.OpReverse, trace.NoIndex, l.size())
	}
}

// CopyTo copies the elements into dst and returns the number copied
// (one Copy event).
func (l *List[T]) CopyTo(dst []T) int {
	n := copy(dst, l.items)
	if !l.h.Drop(trace.OpCopy, trace.NoIndex) {
		l.h.Emit(trace.OpCopy, trace.NoIndex, l.size())
	}
	return n
}

// ToSlice returns a fresh copy of the elements (one Copy event).
func (l *List[T]) ToSlice() []T {
	out := make([]T, len(l.items))
	copy(out, l.items)
	if !l.h.Drop(trace.OpCopy, trace.NoIndex) {
		l.h.Emit(trace.OpCopy, trace.NoIndex, l.size())
	}
	return out
}

// ForEach applies f to every element. The whole traversal is one compound
// ForAll event; iterating by index with Get instead yields the per-element
// Read-Forward profile the paper's figures show.
func (l *List[T]) ForEach(f func(v T)) {
	if !l.h.Drop(trace.OpForAll, trace.NoIndex) {
		l.h.Emit(trace.OpForAll, trace.NoIndex, l.size())
	}
	for _, v := range l.items {
		f(v)
	}
}

// Enumerate walks the elements front to end, emitting one Read event per
// visited element — the profile a C# foreach produces through the list's
// enumerator, and what makes enumeration loops visible as Read-Forward
// patterns. f returning false stops the walk early (like breaking out of a
// foreach).
func (l *List[T]) Enumerate(f func(i int, v T) bool) {
	for i, v := range l.items {
		if !l.h.Drop(trace.OpRead, i) {
			l.h.Emit(trace.OpRead, i, l.size())
		}
		if !f(i, v) {
			return
		}
	}
}

// Unwrap exposes the backing slice without emitting events. It exists for
// the parallelized implementations that a recommended action produces: after
// an engineer follows the recommendation, the hot loop operates on raw data.
func (l *List[T]) Unwrap() []T { return l.items }

func (l *List[T]) checkIndex(i int) {
	if i < 0 || i >= len(l.items) {
		panic(fmt.Sprintf("dstruct: List index %d out of range [0,%d)", i, len(l.items)))
	}
}
