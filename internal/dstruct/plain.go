package dstruct

import (
	"fmt"
	"sort"
)

// Uninstrumented twins. Table IV's slowdown column divides the runtime of
// the instrumented program by the runtime of the original; PlainList and
// PlainArray are those originals, with the same method surface as List and
// Array so a workload can be written once against a common shape and run in
// both modes.

// PlainList is List without event emission.
type PlainList[T comparable] struct {
	items []T
}

// NewPlainList returns an empty plain list.
func NewPlainList[T comparable]() *PlainList[T] { return &PlainList[T]{} }

// NewPlainListCap returns a plain list with preallocated capacity.
func NewPlainListCap[T comparable](capacity int) *PlainList[T] {
	return &PlainList[T]{items: make([]T, 0, capacity)}
}

// Len returns the number of elements.
func (l *PlainList[T]) Len() int { return len(l.items) }

// Add appends v.
func (l *PlainList[T]) Add(v T) { l.items = append(l.items, v) }

// Insert places v at position i.
func (l *PlainList[T]) Insert(i int, v T) {
	if i < 0 || i > len(l.items) {
		panic(fmt.Sprintf("dstruct: PlainList.Insert index %d out of range [0,%d]", i, len(l.items)))
	}
	var zero T
	l.items = append(l.items, zero)
	copy(l.items[i+1:], l.items[i:])
	l.items[i] = v
}

// Get returns the element at i.
func (l *PlainList[T]) Get(i int) T { return l.items[i] }

// Set replaces the element at i.
func (l *PlainList[T]) Set(i int, v T) { l.items[i] = v }

// RemoveAt deletes the element at i.
func (l *PlainList[T]) RemoveAt(i int) {
	copy(l.items[i:], l.items[i+1:])
	l.items = l.items[:len(l.items)-1]
}

// IndexOf returns the position of the first occurrence of v, or -1.
func (l *PlainList[T]) IndexOf(v T) int {
	for i, x := range l.items {
		if x == v {
			return i
		}
	}
	return -1
}

// Contains reports whether v occurs in the list.
func (l *PlainList[T]) Contains(v T) bool { return l.IndexOf(v) >= 0 }

// Clear removes all elements, retaining capacity.
func (l *PlainList[T]) Clear() { l.items = l.items[:0] }

// Sort orders the elements by less.
func (l *PlainList[T]) Sort(less func(a, b T) bool) {
	sort.SliceStable(l.items, func(i, j int) bool { return less(l.items[i], l.items[j]) })
}

// Unwrap exposes the backing slice.
func (l *PlainList[T]) Unwrap() []T { return l.items }

// PlainArray is Array without event emission.
type PlainArray[T comparable] struct {
	items []T
}

// NewPlainArray returns a plain array of the given length.
func NewPlainArray[T comparable](length int) *PlainArray[T] {
	return &PlainArray[T]{items: make([]T, length)}
}

// Len returns the array length.
func (a *PlainArray[T]) Len() int { return len(a.items) }

// Get returns the element at i.
func (a *PlainArray[T]) Get(i int) T { return a.items[i] }

// Set replaces the element at i.
func (a *PlainArray[T]) Set(i int, v T) { a.items[i] = v }

// IndexOf scans for v; -1 when absent.
func (a *PlainArray[T]) IndexOf(v T) int {
	for i, x := range a.items {
		if x == v {
			return i
		}
	}
	return -1
}

// Unwrap exposes the backing slice.
func (a *PlainArray[T]) Unwrap() []T { return a.items }
