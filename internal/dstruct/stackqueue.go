package dstruct

import "dsspy/internal/trace"

// Stack is an instrumented LIFO container. Its profile — inserts and deletes
// always at a common end — is exactly what the Stack-Implementation use case
// looks for when an engineer hand-rolls the same behaviour on a List.
type Stack[T comparable] struct {
	h     trace.Handle
	items []T
}

// NewStack registers an empty instrumented stack.
func NewStack[T comparable](s *trace.Session) *Stack[T] {
	st := &Stack[T]{}
	s.InitHandle(&st.h, s.Register(trace.KindStack, typeName1[T]("Stack"), "", 1))
	return st
}

// ID returns the registry id of this instance.
func (st *Stack[T]) ID() trace.InstanceID { return st.h.ID() }

// Len returns the number of elements (no event).
func (st *Stack[T]) Len() int { return len(st.items) }

// Push places v on top (Insert at the back end).
func (st *Stack[T]) Push(v T) {
	st.items = append(st.items, v)
	if !st.h.Drop(trace.OpInsert, len(st.items)-1) {
		st.h.Emit(trace.OpInsert, len(st.items)-1, len(st.items))
	}
}

// Pop removes and returns the top element (Delete at the back end).
// The second result is false on an empty stack.
func (st *Stack[T]) Pop() (T, bool) {
	var zero T
	if len(st.items) == 0 {
		return zero, false
	}
	i := len(st.items) - 1
	v := st.items[i]
	st.items = st.items[:i]
	if !st.h.Drop(trace.OpDelete, i) {
		st.h.Emit(trace.OpDelete, i, len(st.items))
	}
	return v, true
}

// Peek returns the top element without removing it (Read at the back end).
func (st *Stack[T]) Peek() (T, bool) {
	var zero T
	if len(st.items) == 0 {
		return zero, false
	}
	i := len(st.items) - 1
	if !st.h.Drop(trace.OpRead, i) {
		st.h.Emit(trace.OpRead, i, len(st.items))
	}
	return st.items[i], true
}

// Clear removes all elements (one Clear event).
func (st *Stack[T]) Clear() {
	st.items = st.items[:0]
	if !st.h.Drop(trace.OpClear, trace.NoIndex) {
		st.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}

// Queue is an instrumented FIFO container: inserts at the back, deletes at
// the front — the profile Implement-Queue detects when it is emulated on a
// List. The backing store is a slice with an amortized-compacting head.
type Queue[T comparable] struct {
	h     trace.Handle
	items []T
	head  int
}

// NewQueue registers an empty instrumented queue.
func NewQueue[T comparable](s *trace.Session) *Queue[T] {
	q := &Queue[T]{}
	s.InitHandle(&q.h, s.Register(trace.KindQueue, typeName1[T]("Queue"), "", 1))
	return q
}

// ID returns the registry id of this instance.
func (q *Queue[T]) ID() trace.InstanceID { return q.h.ID() }

// Len returns the number of queued elements (no event).
func (q *Queue[T]) Len() int { return len(q.items) - q.head }

// Enqueue appends v at the back (Insert at the back end).
func (q *Queue[T]) Enqueue(v T) {
	q.items = append(q.items, v)
	if !q.h.Drop(trace.OpInsert, q.Len()-1) {
		q.h.Emit(trace.OpInsert, q.Len()-1, q.Len())
	}
}

// Dequeue removes and returns the front element (Delete at the front end).
// The second result is false on an empty queue.
func (q *Queue[T]) Dequeue() (T, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	v := q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head > len(q.items)/2 && q.head > 32 {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	if !q.h.Drop(trace.OpDelete, 0) {
		q.h.Emit(trace.OpDelete, 0, q.Len())
	}
	return v, true
}

// PeekFront returns the front element without removing it (Read at front).
func (q *Queue[T]) PeekFront() (T, bool) {
	var zero T
	if q.Len() == 0 {
		return zero, false
	}
	if !q.h.Drop(trace.OpRead, 0) {
		q.h.Emit(trace.OpRead, 0, q.Len())
	}
	return q.items[q.head], true
}

// Clear removes all elements (one Clear event).
func (q *Queue[T]) Clear() {
	q.items = q.items[:0]
	q.head = 0
	if !q.h.Drop(trace.OpClear, trace.NoIndex) {
		q.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}
