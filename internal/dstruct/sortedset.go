package dstruct

import (
	"fmt"
	"sort"

	"dsspy/internal/trace"
)

// SortedSet is an instrumented ordered set modeled on SortedSet<T>
// (0.51 % of the study's instances): unique elements kept in key order,
// positional reads, range queries. The backing store is a sorted slice —
// like .NET's red-black tree it gives ordered iteration, and the positional
// event semantics match the study's linear view of containers.
type SortedSet[T Ordered] struct {
	h     trace.Handle
	items []T
}

// NewSortedSet registers an empty instrumented sorted set.
func NewSortedSet[T Ordered](s *trace.Session) *SortedSet[T] {
	ss := &SortedSet[T]{}
	s.InitHandle(&ss.h, s.Register(trace.KindSortedList, typeName1[T]("SortedSet"), "", 1))
	return ss
}

// ID returns the registry id of this instance.
func (ss *SortedSet[T]) ID() trace.InstanceID { return ss.h.ID() }

// Len returns the number of members (no event).
func (ss *SortedSet[T]) Len() int { return len(ss.items) }

// locate returns the insertion position for v and whether it is present.
func (ss *SortedSet[T]) locate(v T) (int, bool) {
	i := sort.Search(len(ss.items), func(i int) bool { return ss.items[i] >= v })
	return i, i < len(ss.items) && ss.items[i] == v
}

// Add inserts v if absent, reporting whether it was new (one Insert event).
func (ss *SortedSet[T]) Add(v T) bool {
	i, found := ss.locate(v)
	if found {
		if !ss.h.Drop(trace.OpInsert, i) {
			ss.h.Emit(trace.OpInsert, i, len(ss.items))
		}
		return false
	}
	var zero T
	ss.items = append(ss.items, zero)
	copy(ss.items[i+1:], ss.items[i:])
	ss.items[i] = v
	if !ss.h.Drop(trace.OpInsert, i) {
		ss.h.Emit(trace.OpInsert, i, len(ss.items))
	}
	return true
}

// Contains reports membership (one Search event).
func (ss *SortedSet[T]) Contains(v T) bool {
	i, found := ss.locate(v)
	idx := trace.NoIndex
	if found {
		idx = i
	}
	if !ss.h.Drop(trace.OpSearch, idx) {
		ss.h.Emit(trace.OpSearch, idx, len(ss.items))
	}
	return found
}

// Remove deletes v, reporting whether it was present (one Delete event).
func (ss *SortedSet[T]) Remove(v T) bool {
	i, found := ss.locate(v)
	if !found {
		if !ss.h.Drop(trace.OpDelete, trace.NoIndex) {
			ss.h.Emit(trace.OpDelete, trace.NoIndex, len(ss.items))
		}
		return false
	}
	ss.items = append(ss.items[:i], ss.items[i+1:]...)
	if !ss.h.Drop(trace.OpDelete, i) {
		ss.h.Emit(trace.OpDelete, i, len(ss.items))
	}
	return true
}

// At returns the i-th smallest member (one Read event).
func (ss *SortedSet[T]) At(i int) T {
	if i < 0 || i >= len(ss.items) {
		panic(fmt.Sprintf("dstruct: SortedSet index %d out of range [0,%d)", i, len(ss.items)))
	}
	if !ss.h.Drop(trace.OpRead, i) {
		ss.h.Emit(trace.OpRead, i, len(ss.items))
	}
	return ss.items[i]
}

// Min returns the smallest member (one Read event); false when empty.
func (ss *SortedSet[T]) Min() (T, bool) {
	var zero T
	if len(ss.items) == 0 {
		return zero, false
	}
	if !ss.h.Drop(trace.OpRead, 0) {
		ss.h.Emit(trace.OpRead, 0, len(ss.items))
	}
	return ss.items[0], true
}

// Max returns the largest member (one Read event); false when empty.
func (ss *SortedSet[T]) Max() (T, bool) {
	var zero T
	if len(ss.items) == 0 {
		return zero, false
	}
	if !ss.h.Drop(trace.OpRead, len(ss.items)-1) {
		ss.h.Emit(trace.OpRead, len(ss.items)-1, len(ss.items))
	}
	return ss.items[len(ss.items)-1], true
}

// Range applies f to every member in [lo, hi] in order (one ForAll event).
func (ss *SortedSet[T]) Range(lo, hi T, f func(v T)) {
	if !ss.h.Drop(trace.OpForAll, trace.NoIndex) {
		ss.h.Emit(trace.OpForAll, trace.NoIndex, len(ss.items))
	}
	i := sort.Search(len(ss.items), func(i int) bool { return ss.items[i] >= lo })
	for ; i < len(ss.items) && ss.items[i] <= hi; i++ {
		f(ss.items[i])
	}
}

// Clear removes all members (one Clear event).
func (ss *SortedSet[T]) Clear() {
	ss.items = ss.items[:0]
	if !ss.h.Drop(trace.OpClear, trace.NoIndex) {
		ss.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}

// ArrayList is the instrumented untyped list (System.Collections.ArrayList,
// 192 study instances): a List of any. Equality for Search operations uses
// interface comparison, which matches how ArrayList.IndexOf compares boxed
// values.
type ArrayList struct {
	h     trace.Handle
	items []any
}

// NewArrayList registers an empty instrumented untyped list.
func NewArrayList(s *trace.Session) *ArrayList {
	al := &ArrayList{}
	s.InitHandle(&al.h, s.Register(trace.KindList, "ArrayList", "", 1))
	return al
}

// ID returns the registry id of this instance.
func (al *ArrayList) ID() trace.InstanceID { return al.h.ID() }

// Len returns the number of elements (no event).
func (al *ArrayList) Len() int { return len(al.items) }

// Add appends v (Insert at the back).
func (al *ArrayList) Add(v any) {
	al.items = append(al.items, v)
	if !al.h.Drop(trace.OpInsert, len(al.items)-1) {
		al.h.Emit(trace.OpInsert, len(al.items)-1, len(al.items))
	}
}

// Get returns the element at i (one Read event).
func (al *ArrayList) Get(i int) any {
	al.check(i)
	if !al.h.Drop(trace.OpRead, i) {
		al.h.Emit(trace.OpRead, i, len(al.items))
	}
	return al.items[i]
}

// Set replaces the element at i (one Write event).
func (al *ArrayList) Set(i int, v any) {
	al.check(i)
	al.items[i] = v
	if !al.h.Drop(trace.OpWrite, i) {
		al.h.Emit(trace.OpWrite, i, len(al.items))
	}
}

// RemoveAt deletes the element at i (one Delete event).
func (al *ArrayList) RemoveAt(i int) {
	al.check(i)
	copy(al.items[i:], al.items[i+1:])
	al.items[len(al.items)-1] = nil
	al.items = al.items[:len(al.items)-1]
	if !al.h.Drop(trace.OpDelete, i) {
		al.h.Emit(trace.OpDelete, i, len(al.items))
	}
}

// IndexOf scans for v using interface equality (one Search event); -1 when
// absent or when v's dynamic type is not comparable.
func (al *ArrayList) IndexOf(v any) int {
	found := -1
	func() {
		defer func() { _ = recover() }() // uncomparable dynamic types
		for i, x := range al.items {
			if x == v {
				found = i
				return
			}
		}
	}()
	if !al.h.Drop(trace.OpSearch, found) {
		al.h.Emit(trace.OpSearch, found, len(al.items))
	}
	return found
}

// Clear removes all elements (one Clear event).
func (al *ArrayList) Clear() {
	al.items = al.items[:0]
	if !al.h.Drop(trace.OpClear, trace.NoIndex) {
		al.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}

func (al *ArrayList) check(i int) {
	if i < 0 || i >= len(al.items) {
		panic(fmt.Sprintf("dstruct: ArrayList index %d out of range [0,%d)", i, len(al.items)))
	}
}
