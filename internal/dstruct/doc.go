// Package dstruct provides the instrumented object-oriented data structures
// DSspy profiles. Each container canalizes every interaction through its
// interface methods — the paper's definition of an object-oriented data
// structure — and each method emits exactly one access event describing the
// interaction: the trivial access types Read and Write for the indexers, and
// the compound access types Insert, Search, Delete, Clear, Copy, Reverse,
// Sort and ForAll for the higher-level operations.
//
// The paper instruments C# source with Roslyn; it also notes that the
// profiler itself is built with the proxy design pattern so it extends to
// further containers. Go has no way to intercept accesses to built-in slices
// and maps, so this package IS that proxy layer: List, Array, Dictionary,
// Stack, Queue, HashSet, LinkedList and SortedList wrap the native
// containers behind .NET-like interfaces and report to a trace.Session.
//
// Size semantics: a List reports max(element count, initial capacity) as the
// event Size, which reproduces both of the paper's profile figures —
// Figure 2's discussion makes a point of Add operations not growing the size
// of a list that was constructed with a fixed capacity, while Figure 3 shows
// the size of a default-constructed list tracking its element count. Array
// reports its (fixed) length, and the remaining containers report their
// element count.
//
// Uninstrumented twins (PlainList, PlainArray) provide the baselines for the
// slowdown measurements in Table IV.
package dstruct
