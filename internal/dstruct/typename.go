package dstruct

import (
	"reflect"
	"sync"
)

// Registered type names — "List[int]", "Dictionary[string,int]" — used to be
// rebuilt with fmt.Sprintf on every construction, a measurable allocation in
// short-lived-instance workloads. The names are pure functions of the generic
// instantiation, so they are interned here: one build per (prefix, type
// arguments) combination for the life of the process, and constructors pay a
// lock-free map hit.
var nameCache sync.Map // nameKey -> string

type nameKey struct {
	prefix string
	a, b   reflect.Type
}

func cachedName(prefix string, a, b reflect.Type) string {
	k := nameKey{prefix: prefix, a: a, b: b}
	if v, ok := nameCache.Load(k); ok {
		return v.(string)
	}
	s := prefix + "[" + a.String()
	if b != nil {
		s += "," + b.String()
	}
	s += "]"
	nameCache.Store(k, s)
	return s
}

// typeName1 renders prefix[T] the way %T used to, interned per instantiation.
func typeName1[T any](prefix string) string {
	return cachedName(prefix, reflect.TypeFor[T](), nil)
}

// typeName2 renders prefix[K,V], interned per instantiation.
func typeName2[K any, V any](prefix string) string {
	return cachedName(prefix, reflect.TypeFor[K](), reflect.TypeFor[V]())
}
