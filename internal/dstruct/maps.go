package dstruct

import (
	"fmt"
	"sort"

	"dsspy/internal/trace"
)

// Dictionary is an instrumented hash map modeled on Dictionary<K,V>, the
// second most frequent dynamic data structure in the empirical study
// (16.53 % of instances). Dictionaries have no linear positions, so events
// carry NoIndex; profiles still expose insert/read/delete phases and sizes.
type Dictionary[K comparable, V any] struct {
	h trace.Handle
	m map[K]V
}

// NewDictionary registers an empty instrumented dictionary.
func NewDictionary[K comparable, V any](s *trace.Session) *Dictionary[K, V] {
	d := &Dictionary[K, V]{m: make(map[K]V)}
	s.InitHandle(&d.h, s.Register(trace.KindDictionary, typeName2[K, V]("Dictionary"), "", 1))
	return d
}

// ID returns the registry id of this instance.
func (d *Dictionary[K, V]) ID() trace.InstanceID { return d.h.ID() }

// Len returns the number of entries (no event).
func (d *Dictionary[K, V]) Len() int { return len(d.m) }

// Put stores v under k. A new key is an Insert; replacing an existing value
// is a Write, mirroring how the indexer behaves in .NET.
func (d *Dictionary[K, V]) Put(k K, v V) {
	op := trace.OpInsert
	if _, ok := d.m[k]; ok {
		op = trace.OpWrite
	}
	d.m[k] = v
	if !d.h.Drop(op, trace.NoIndex) {
		d.h.Emit(op, trace.NoIndex, len(d.m))
	}
}

// Get returns the value under k (one Read event).
func (d *Dictionary[K, V]) Get(k K) (V, bool) {
	v, ok := d.m[k]
	if !d.h.Drop(trace.OpRead, trace.NoIndex) {
		d.h.Emit(trace.OpRead, trace.NoIndex, len(d.m))
	}
	return v, ok
}

// ContainsKey reports whether k is present (one Search event).
func (d *Dictionary[K, V]) ContainsKey(k K) bool {
	_, ok := d.m[k]
	if !d.h.Drop(trace.OpSearch, trace.NoIndex) {
		d.h.Emit(trace.OpSearch, trace.NoIndex, len(d.m))
	}
	return ok
}

// Delete removes k, reporting whether it was present (one Delete event).
func (d *Dictionary[K, V]) Delete(k K) bool {
	_, ok := d.m[k]
	delete(d.m, k)
	if !d.h.Drop(trace.OpDelete, trace.NoIndex) {
		d.h.Emit(trace.OpDelete, trace.NoIndex, len(d.m))
	}
	return ok
}

// Clear removes all entries (one Clear event).
func (d *Dictionary[K, V]) Clear() {
	clear(d.m)
	if !d.h.Drop(trace.OpClear, trace.NoIndex) {
		d.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}

// ForEach applies f to every entry in unspecified order (one ForAll event).
func (d *Dictionary[K, V]) ForEach(f func(k K, v V)) {
	if !d.h.Drop(trace.OpForAll, trace.NoIndex) {
		d.h.Emit(trace.OpForAll, trace.NoIndex, len(d.m))
	}
	for k, v := range d.m {
		f(k, v)
	}
}

// HashSet is an instrumented set of unique values.
type HashSet[T comparable] struct {
	h trace.Handle
	m map[T]struct{}
}

// NewHashSet registers an empty instrumented hash set.
func NewHashSet[T comparable](s *trace.Session) *HashSet[T] {
	h := &HashSet[T]{m: make(map[T]struct{})}
	s.InitHandle(&h.h, s.Register(trace.KindHashSet, typeName1[T]("HashSet"), "", 1))
	return h
}

// ID returns the registry id of this instance.
func (h *HashSet[T]) ID() trace.InstanceID { return h.h.ID() }

// Len returns the number of members (no event).
func (h *HashSet[T]) Len() int { return len(h.m) }

// Add inserts v, reporting whether it was new (one Insert event).
func (h *HashSet[T]) Add(v T) bool {
	_, existed := h.m[v]
	h.m[v] = struct{}{}
	if !h.h.Drop(trace.OpInsert, trace.NoIndex) {
		h.h.Emit(trace.OpInsert, trace.NoIndex, len(h.m))
	}
	return !existed
}

// Contains reports membership (one Search event).
func (h *HashSet[T]) Contains(v T) bool {
	_, ok := h.m[v]
	if !h.h.Drop(trace.OpSearch, trace.NoIndex) {
		h.h.Emit(trace.OpSearch, trace.NoIndex, len(h.m))
	}
	return ok
}

// Remove deletes v, reporting whether it was present (one Delete event).
func (h *HashSet[T]) Remove(v T) bool {
	_, ok := h.m[v]
	delete(h.m, v)
	if !h.h.Drop(trace.OpDelete, trace.NoIndex) {
		h.h.Emit(trace.OpDelete, trace.NoIndex, len(h.m))
	}
	return ok
}

// Clear removes all members (one Clear event).
func (h *HashSet[T]) Clear() {
	clear(h.m)
	if !h.h.Drop(trace.OpClear, trace.NoIndex) {
		h.h.Emit(trace.OpClear, trace.NoIndex, 0)
	}
}

// SortedList is an instrumented key-ordered container modeled on
// SortedList<K,V>: a pair of parallel slices kept sorted by key, giving
// positional semantics (events carry real indexes).
type SortedList[K Ordered, V any] struct {
	h    trace.Handle
	keys []K
	vals []V
}

// Ordered is the constraint for SortedList and SortedSet keys.
type Ordered interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64 | ~string
}

// NewSortedList registers an empty instrumented sorted list.
func NewSortedList[K Ordered, V any](s *trace.Session) *SortedList[K, V] {
	sl := &SortedList[K, V]{}
	s.InitHandle(&sl.h, s.Register(trace.KindSortedList, typeName2[K, V]("SortedList"), "", 1))
	return sl
}

// ID returns the registry id of this instance.
func (sl *SortedList[K, V]) ID() trace.InstanceID { return sl.h.ID() }

// Len returns the number of entries (no event).
func (sl *SortedList[K, V]) Len() int { return len(sl.keys) }

// Put inserts or replaces the value for k at its sorted position.
func (sl *SortedList[K, V]) Put(k K, v V) {
	i := sort.Search(len(sl.keys), func(i int) bool { return sl.keys[i] >= k })
	if i < len(sl.keys) && sl.keys[i] == k {
		sl.vals[i] = v
		if !sl.h.Drop(trace.OpWrite, i) {
			sl.h.Emit(trace.OpWrite, i, len(sl.keys))
		}
		return
	}
	sl.keys = append(sl.keys, k)
	copy(sl.keys[i+1:], sl.keys[i:])
	sl.keys[i] = k
	var zv V
	sl.vals = append(sl.vals, zv)
	copy(sl.vals[i+1:], sl.vals[i:])
	sl.vals[i] = v
	if !sl.h.Drop(trace.OpInsert, i) {
		sl.h.Emit(trace.OpInsert, i, len(sl.keys))
	}
}

// Get returns the value under k (one Search event — lookup is a binary
// search over positions).
func (sl *SortedList[K, V]) Get(k K) (V, bool) {
	var zv V
	i := sort.Search(len(sl.keys), func(i int) bool { return sl.keys[i] >= k })
	found := i < len(sl.keys) && sl.keys[i] == k
	idx := trace.NoIndex
	if found {
		idx = i
	}
	if !sl.h.Drop(trace.OpSearch, idx) {
		sl.h.Emit(trace.OpSearch, idx, len(sl.keys))
	}
	if !found {
		return zv, false
	}
	return sl.vals[i], true
}

// At returns the i-th smallest key and its value (one Read event).
func (sl *SortedList[K, V]) At(i int) (K, V) {
	if i < 0 || i >= len(sl.keys) {
		panic(fmt.Sprintf("dstruct: SortedList index %d out of range [0,%d)", i, len(sl.keys)))
	}
	if !sl.h.Drop(trace.OpRead, i) {
		sl.h.Emit(trace.OpRead, i, len(sl.keys))
	}
	return sl.keys[i], sl.vals[i]
}

// Delete removes k, reporting whether it was present (one Delete event).
func (sl *SortedList[K, V]) Delete(k K) bool {
	i := sort.Search(len(sl.keys), func(i int) bool { return sl.keys[i] >= k })
	if i >= len(sl.keys) || sl.keys[i] != k {
		if !sl.h.Drop(trace.OpDelete, trace.NoIndex) {
			sl.h.Emit(trace.OpDelete, trace.NoIndex, len(sl.keys))
		}
		return false
	}
	sl.keys = append(sl.keys[:i], sl.keys[i+1:]...)
	sl.vals = append(sl.vals[:i], sl.vals[i+1:]...)
	if !sl.h.Drop(trace.OpDelete, i) {
		sl.h.Emit(trace.OpDelete, i, len(sl.keys))
	}
	return true
}
