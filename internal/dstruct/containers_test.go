package dstruct

import (
	"testing"
	"testing/quick"

	"dsspy/internal/trace"
)

func TestArrayBasics(t *testing.T) {
	s, rec := newTestSession()
	a := NewArray[float64](s, 4)
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Set(2, 3.5)
	if e := lastEvent(t, rec); e.Op != trace.OpWrite || e.Index != 2 || e.Size != 4 {
		t.Errorf("Set event = %v", e)
	}
	if got := a.Get(2); got != 3.5 {
		t.Errorf("Get(2) = %v", got)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpRead || e.Index != 2 {
		t.Errorf("Get event = %v", e)
	}
	inst, _ := s.Instance(a.ID())
	if inst.Kind != trace.KindArray || inst.TypeName != "Array[float64]" {
		t.Errorf("registry metadata = %+v", inst)
	}
}

func TestArrayFillAndSearch(t *testing.T) {
	s, rec := newTestSession()
	a := NewArray[int](s, 3)
	a.Fill(7)
	if e := lastEvent(t, rec); e.Op != trace.OpForAll {
		t.Errorf("Fill event = %v", e)
	}
	for i := 0; i < 3; i++ {
		if a.Get(i) != 7 {
			t.Fatalf("Fill missed index %d", i)
		}
	}
	a.Set(1, 9)
	if i := a.IndexOf(9); i != 1 {
		t.Errorf("IndexOf(9) = %d", i)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpSearch || e.Index != 1 {
		t.Errorf("IndexOf event = %v", e)
	}
	if a.Contains(12345) {
		t.Error("Contains(12345) = true")
	}
	if e := lastEvent(t, rec); e.Index != -1 {
		t.Errorf("failed search index = %d, want -1", e.Index)
	}
}

func TestArrayResizeEmitsCopy(t *testing.T) {
	s, rec := newTestSession()
	a := NewArray[int](s, 2)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Resize(4)
	evs := rec.Events()
	n := len(evs)
	if evs[n-2].Op != trace.OpResize || evs[n-1].Op != trace.OpCopy {
		t.Errorf("Resize emitted %s,%s; want Resize,Copy", evs[n-2].Op, evs[n-1].Op)
	}
	if a.Len() != 4 || a.Get(0) != 1 || a.Get(1) != 2 || a.Get(2) != 0 {
		t.Error("Resize lost or gained data")
	}
	a.Resize(1)
	if a.Len() != 1 || a.Get(0) != 1 {
		t.Error("shrink broken")
	}
}

func TestArrayInsertRemoveAt(t *testing.T) {
	s, rec := newTestSession()
	a := NewArray[int](s, 2)
	a.Set(0, 10)
	a.Set(1, 30)
	a.InsertAt(1, 20)
	evs := rec.Events()
	n := len(evs)
	if evs[n-2].Op != trace.OpInsert || evs[n-1].Op != trace.OpCopy {
		t.Errorf("InsertAt emitted %s,%s; want Insert,Copy", evs[n-2].Op, evs[n-1].Op)
	}
	a.RemoveAt(0)
	evs = rec.Events()
	n = len(evs)
	if evs[n-2].Op != trace.OpDelete || evs[n-1].Op != trace.OpCopy {
		t.Errorf("RemoveAt emitted %s,%s; want Delete,Copy", evs[n-2].Op, evs[n-1].Op)
	}
	if a.Len() != 2 || a.Get(0) != 20 || a.Get(1) != 30 {
		t.Error("InsertAt/RemoveAt misplaced elements")
	}
}

func TestArrayPanics(t *testing.T) {
	s, _ := newTestSession()
	a := NewArray[int](s, 1)
	for name, f := range map[string]func(){
		"Get(1)":       func() { a.Get(1) },
		"Set(-1)":      func() { a.Set(-1, 0) },
		"Resize(-1)":   func() { a.Resize(-1) },
		"InsertAt(5)":  func() { a.InsertAt(5, 0) },
		"RemoveAt(8)":  func() { a.RemoveAt(8) },
		"NewArray(-1)": func() { NewArray[int](s, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestArrayCopyToAndUnwrap(t *testing.T) {
	s, rec := newTestSession()
	a := NewArray[int](s, 3)
	a.Set(0, 1)
	dst := make([]int, 3)
	if n := a.CopyTo(dst); n != 3 || dst[0] != 1 {
		t.Errorf("CopyTo n=%d dst=%v", n, dst)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpCopy {
		t.Errorf("CopyTo event = %v", e)
	}
	before := rec.Len()
	_ = a.Unwrap()
	if rec.Len() != before {
		t.Error("Unwrap emitted events")
	}
}

func TestStackLIFOAndEvents(t *testing.T) {
	s, rec := newTestSession()
	st := NewStack[int](s)
	st.Push(1)
	st.Push(2)
	st.Push(3)
	if v, ok := st.Peek(); !ok || v != 3 {
		t.Errorf("Peek = %d, %v", v, ok)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpRead || e.Index != 2 {
		t.Errorf("Peek event = %v", e)
	}
	for want := 3; want >= 1; want-- {
		v, ok := st.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d, %v; want %d", v, ok, want)
		}
	}
	if _, ok := st.Pop(); ok {
		t.Error("Pop on empty stack succeeded")
	}
	if _, ok := st.Peek(); ok {
		t.Error("Peek on empty stack succeeded")
	}
	// Push/Pop share the back end: insert index == delete index.
	var evs []trace.Event
	for _, e := range rec.Events() {
		if e.Op == trace.OpInsert || e.Op == trace.OpDelete {
			evs = append(evs, e)
		}
	}
	if len(evs) != 6 {
		t.Fatalf("got %d insert/delete events", len(evs))
	}
	if evs[2].Index != 2 || evs[3].Index != 2 {
		t.Errorf("top-of-stack indexes: push@%d pop@%d", evs[2].Index, evs[3].Index)
	}
}

func TestStackClear(t *testing.T) {
	s, rec := newTestSession()
	st := NewStack[int](s)
	st.Push(1)
	st.Clear()
	if st.Len() != 0 {
		t.Error("Clear left elements")
	}
	if e := lastEvent(t, rec); e.Op != trace.OpClear {
		t.Errorf("Clear event = %v", e)
	}
}

func TestQueueFIFOAndEnds(t *testing.T) {
	s, rec := newTestSession()
	q := NewQueue[string](s)
	q.Enqueue("a")
	q.Enqueue("b")
	q.Enqueue("c")
	if v, ok := q.PeekFront(); !ok || v != "a" {
		t.Errorf("PeekFront = %q, %v", v, ok)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpRead || e.Index != 0 {
		t.Errorf("PeekFront event = %v", e)
	}
	for _, want := range []string{"a", "b", "c"} {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = %q, %v; want %q", v, ok, want)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("Dequeue on empty queue succeeded")
	}
	// Enqueues hit the back, dequeues the front — the IQ fingerprint.
	for _, e := range rec.Events() {
		switch e.Op {
		case trace.OpInsert:
			if e.Index != e.Size-1 {
				t.Errorf("enqueue not at back: %v", e)
			}
		case trace.OpDelete:
			if e.Index != 0 {
				t.Errorf("dequeue not at front: %v", e)
			}
		}
	}
}

func TestQueueCompaction(t *testing.T) {
	s, _ := newTestSession()
	q := NewQueue[int](s)
	// Drive enough churn to trigger head compaction.
	for i := 0; i < 200; i++ {
		q.Enqueue(i)
	}
	for i := 0; i < 150; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue %d = %d, %v", i, v, ok)
		}
	}
	if q.Len() != 50 {
		t.Fatalf("Len = %d, want 50", q.Len())
	}
	for i := 150; i < 200; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("post-compaction Dequeue = %d, %v; want %d", v, ok, i)
		}
	}
	q.Enqueue(1)
	q.Clear()
	if q.Len() != 0 {
		t.Error("Clear left elements")
	}
}

func TestDictionaryOps(t *testing.T) {
	s, rec := newTestSession()
	d := NewDictionary[string, int](s)
	d.Put("a", 1)
	if e := lastEvent(t, rec); e.Op != trace.OpInsert {
		t.Errorf("new-key Put event = %v", e)
	}
	d.Put("a", 2)
	if e := lastEvent(t, rec); e.Op != trace.OpWrite {
		t.Errorf("existing-key Put event = %v", e)
	}
	if v, ok := d.Get("a"); !ok || v != 2 {
		t.Errorf("Get = %d, %v", v, ok)
	}
	if e := lastEvent(t, rec); e.Op != trace.OpRead {
		t.Errorf("Get event = %v", e)
	}
	if !d.ContainsKey("a") || d.ContainsKey("zz") {
		t.Error("ContainsKey wrong")
	}
	if !d.Delete("a") || d.Delete("a") {
		t.Error("Delete wrong")
	}
	d.Put("x", 1)
	d.Put("y", 2)
	sum := 0
	d.ForEach(func(_ string, v int) { sum += v })
	if sum != 3 {
		t.Errorf("ForEach sum = %d", sum)
	}
	d.Clear()
	if d.Len() != 0 {
		t.Error("Clear left entries")
	}
}

func TestHashSetOps(t *testing.T) {
	s, _ := newTestSession()
	h := NewHashSet[int](s)
	if !h.Add(1) || h.Add(1) {
		t.Error("Add uniqueness wrong")
	}
	if !h.Contains(1) || h.Contains(2) {
		t.Error("Contains wrong")
	}
	if !h.Remove(1) || h.Remove(1) {
		t.Error("Remove wrong")
	}
	h.Add(5)
	h.Clear()
	if h.Len() != 0 {
		t.Error("Clear left members")
	}
}

func TestSortedListOrdering(t *testing.T) {
	s, rec := newTestSession()
	sl := NewSortedList[int, string](s)
	sl.Put(5, "five")
	sl.Put(1, "one")
	sl.Put(3, "three")
	if sl.Len() != 3 {
		t.Fatalf("Len = %d", sl.Len())
	}
	wantKeys := []int{1, 3, 5}
	for i, wk := range wantKeys {
		k, _ := sl.At(i)
		if k != wk {
			t.Errorf("At(%d) key = %d, want %d", i, k, wk)
		}
	}
	// Replacing emits Write at the key's position.
	sl.Put(3, "THREE")
	if e := lastEvent(t, rec); e.Op != trace.OpWrite || e.Index != 1 {
		t.Errorf("replace event = %v", e)
	}
	if v, ok := sl.Get(3); !ok || v != "THREE" {
		t.Errorf("Get(3) = %q, %v", v, ok)
	}
	if _, ok := sl.Get(42); ok {
		t.Error("Get(42) found")
	}
	if !sl.Delete(1) || sl.Delete(1) {
		t.Error("Delete wrong")
	}
	if sl.Len() != 2 {
		t.Errorf("Len after delete = %d", sl.Len())
	}
}

func TestSortedListAtPanics(t *testing.T) {
	s, _ := newTestSession()
	sl := NewSortedList[int, int](s)
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	sl.At(0)
}

// Property: SortedList keys are always nondecreasing after any Put sequence.
func TestSortedListInvariant(t *testing.T) {
	f := func(keys []int16) bool {
		s, _ := newTestSession()
		sl := NewSortedList[int16, int](s)
		for i, k := range keys {
			sl.Put(k, i)
		}
		prev := int16(-32768)
		for i := 0; i < sl.Len(); i++ {
			k, _ := sl.At(i)
			if k < prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinkedListEnds(t *testing.T) {
	s, rec := newTestSession()
	l := NewLinkedList[int](s)
	l.AddLast(2)
	l.AddFirst(1)
	l.AddLast(3)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if v, _ := l.First(); v != 1 {
		t.Errorf("First = %d", v)
	}
	if v, _ := l.Last(); v != 3 {
		t.Errorf("Last = %d", v)
	}
	if !l.Contains(2) || l.Contains(9) {
		t.Error("Contains wrong")
	}
	var got []int
	l.ForEach(func(v int) { got = append(got, v) })
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("ForEach order = %v", got)
	}
	if v, ok := l.RemoveFirst(); !ok || v != 1 {
		t.Errorf("RemoveFirst = %d, %v", v, ok)
	}
	if v, ok := l.RemoveLast(); !ok || v != 3 {
		t.Errorf("RemoveLast = %d, %v", v, ok)
	}
	if v, ok := l.RemoveFirst(); !ok || v != 2 {
		t.Errorf("RemoveFirst = %d, %v", v, ok)
	}
	if _, ok := l.RemoveFirst(); ok {
		t.Error("RemoveFirst on empty succeeded")
	}
	if _, ok := l.RemoveLast(); ok {
		t.Error("RemoveLast on empty succeeded")
	}
	if _, ok := l.First(); ok {
		t.Error("First on empty succeeded")
	}
	if _, ok := l.Last(); ok {
		t.Error("Last on empty succeeded")
	}
	l.AddFirst(9)
	l.Clear()
	if l.Len() != 0 {
		t.Error("Clear left elements")
	}
	_ = rec
}

// Property: LinkedList used as a deque matches a slice model.
func TestLinkedListDequeModel(t *testing.T) {
	type step struct {
		Op  uint8
		Val int32
	}
	f := func(steps []step) bool {
		s, _ := newTestSession()
		l := NewLinkedList[int32](s)
		var model []int32
		for _, st := range steps {
			switch st.Op % 4 {
			case 0:
				l.AddFirst(st.Val)
				model = append([]int32{st.Val}, model...)
			case 1:
				l.AddLast(st.Val)
				model = append(model, st.Val)
			case 2:
				v, ok := l.RemoveFirst()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := l.RemoveLast()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if l.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPlainArray(t *testing.T) {
	a := NewPlainArray[int](3)
	a.Set(1, 5)
	if a.Get(1) != 5 || a.Len() != 3 {
		t.Error("PlainArray basic ops")
	}
	if a.IndexOf(5) != 1 || a.IndexOf(99) != -1 {
		t.Error("PlainArray IndexOf")
	}
	if len(a.Unwrap()) != 3 {
		t.Error("PlainArray Unwrap")
	}
}
