package goscan

import (
	"go/ast"
	"go/parser"
	"go/token"
)

// Struct-member analysis, mirroring §II.A's class-member finding ("every
// third class contained at least one list instance as member") for Go
// sources: which struct types declare slice, map, array or channel fields.

// StructInfo describes one struct type and its container-typed fields.
type StructInfo struct {
	Name string
	File string
	Line int
	// Fields counts container fields by kind: "slice", "map", "array",
	// "chan".
	Fields map[string]int
}

// HasField reports whether the struct declares at least one field of the
// given container kind.
func (s StructInfo) HasField(kind string) bool { return s.Fields[kind] > 0 }

// ScanStructs extracts the struct types of one source text and their
// container-typed fields.
func ScanStructs(path, src string) ([]StructInfo, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, 0)
	if err != nil {
		return nil, err
	}
	var out []StructInfo
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		pos := fset.Position(ts.Pos())
		info := StructInfo{
			Name:   ts.Name.Name,
			File:   pos.Filename,
			Line:   pos.Line,
			Fields: map[string]int{},
		}
		for _, field := range st.Fields.List {
			kind := fieldKind(field.Type)
			if kind == "" {
				continue
			}
			n := len(field.Names)
			if n == 0 {
				n = 1 // embedded
			}
			info.Fields[kind] += n
		}
		out = append(out, info)
		return true
	})
	return out, nil
}

func fieldKind(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.ArrayType:
		if t.Len == nil {
			return "slice"
		}
		return "array"
	case *ast.MapType:
		return "map"
	case *ast.ChanType:
		return "chan"
	case *ast.StarExpr:
		return fieldKind(t.X)
	}
	return ""
}

// StructStats aggregates struct-member figures.
type StructStats struct {
	Structs   int
	WithField map[string]int
}

// Fraction returns the share of structs with at least one field of kind.
func (ss StructStats) Fraction(kind string) float64 {
	if ss.Structs == 0 {
		return 0
	}
	return float64(ss.WithField[kind]) / float64(ss.Structs)
}

// AggregateStructs folds struct lists into aggregate statistics.
func AggregateStructs(lists ...[]StructInfo) StructStats {
	ss := StructStats{WithField: map[string]int{}}
	for _, l := range lists {
		for _, s := range l {
			ss.Structs++
			for kind, n := range s.Fields {
				if n > 0 {
					ss.WithField[kind]++
				}
			}
		}
	}
	return ss
}
