package goscan

import "testing"

// FuzzScanSource throws arbitrary text at the scanner: parse errors are
// fine, panics are not, and every reported instance must carry a location.
func FuzzScanSource(f *testing.F) {
	f.Add("package p\nfunc f() { _ = make([]int, 3) }")
	f.Add("package p\nvar x = map[string]int{}")
	f.Add("package p\nvar x = dstruct.NewList[int](s)")
	f.Add("not go at all {{{")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		res, err := ScanSource("fuzz.go", src)
		if err != nil {
			return
		}
		for _, in := range res.Instances {
			if in.Line <= 0 {
				t.Fatalf("instance without location: %+v", in)
			}
			if in.Type == "" {
				t.Fatalf("instance without type: %+v", in)
			}
		}
	})
}
