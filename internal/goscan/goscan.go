// Package goscan is the §II.A empirical-study tool carried over to Go
// sources. The paper's threats-to-validity section argues the concept
// transfers to other object-oriented environments; this scanner provides
// the transfer's first half for Go: it statically finds data-structure
// instantiations — both dsspy's instrumented containers and the raw
// slice/map/channel allocations that correspond to the CTS containers —
// with their locations and element types, so a project's parallelization
// search space can be sized before any dynamic run.
//
// It also serves as the instrumentation assistant: Go has no Roslyn-style
// transparent rewriting, so for each raw allocation the scanner suggests
// the instrumented container that would capture its runtime profile.
package goscan

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Kind classifies a found instantiation.
type Kind string

// Instantiation kinds.
const (
	KindSliceMake   Kind = "slice(make)"
	KindSliceLit    Kind = "slice(literal)"
	KindMapMake     Kind = "map(make)"
	KindMapLit      Kind = "map(literal)"
	KindChanMake    Kind = "chan(make)"
	KindArrayType   Kind = "array"
	KindDSspy       Kind = "dsspy"
	KindPlainTwin   Kind = "dsspy(plain)"
	KindContainerLl Kind = "container/list"
)

// Instance is one data-structure instantiation found in Go source.
type Instance struct {
	Kind Kind
	// Type is the spelled-out type or constructor, e.g. "[]float64",
	// "map[string]int", "dstruct.NewList[int]".
	Type string
	File string
	Line int
	// Suggestion names the instrumented container that would profile this
	// allocation; empty for already-instrumented instances.
	Suggestion string
}

// FileResult is the scan outcome for one file.
type FileResult struct {
	Path      string
	Package   string
	LOC       int // non-blank, non-comment-only lines
	Instances []Instance
}

// Result aggregates a scan.
type Result struct {
	Files []FileResult
}

// ScanSource scans one Go source text.
func ScanSource(path, src string) (FileResult, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return FileResult{}, fmt.Errorf("goscan: %w", err)
	}
	res := FileResult{Path: path, Package: f.Name.Name, LOC: countLOC(src)}

	ast.Inspect(f, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if inst, ok := classifyCall(fset, e); ok {
				res.Instances = append(res.Instances, inst)
			}
		case *ast.CompositeLit:
			if inst, ok := classifyLit(fset, e); ok {
				res.Instances = append(res.Instances, inst)
			}
		}
		return true
	})
	sort.Slice(res.Instances, func(i, j int) bool { return res.Instances[i].Line < res.Instances[j].Line })
	return res, nil
}

// classifyCall recognizes make(...) and dsspy constructor calls.
func classifyCall(fset *token.FileSet, call *ast.CallExpr) (Instance, bool) {
	pos := fset.Position(call.Pos())
	// make([]T, …) / make(map[K]V) / make(chan T)
	if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "make" && len(call.Args) >= 1 {
		typ := typeString(call.Args[0])
		switch t := call.Args[0].(type) {
		case *ast.ArrayType:
			if t.Len == nil {
				return Instance{
					Kind: KindSliceMake, Type: typ, File: pos.Filename, Line: pos.Line,
					Suggestion: suggestForElem("List", t.Elt),
				}, true
			}
		case *ast.MapType:
			return Instance{
				Kind: KindMapMake, Type: typ, File: pos.Filename, Line: pos.Line,
				Suggestion: "dstruct.NewDictionary",
			}, true
		case *ast.ChanType:
			return Instance{
				Kind: KindChanMake, Type: typ, File: pos.Filename, Line: pos.Line,
			}, true
		}
		return Instance{}, false
	}
	// dstruct.NewList[T](s) / dsspy.NewArray[T](s, n) / plain twins /
	// list.New() from container/list.
	fun := call.Fun
	if idx, ok := fun.(*ast.IndexExpr); ok {
		fun = idx.X
	} else if idx, ok := fun.(*ast.IndexListExpr); ok {
		fun = idx.X
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if pkg, ok := sel.X.(*ast.Ident); ok {
			name := sel.Sel.Name
			full := typeString(call.Fun)
			switch {
			case (pkg.Name == "dstruct" || pkg.Name == "dsspy") && strings.HasPrefix(name, "NewPlain"):
				return Instance{Kind: KindPlainTwin, Type: full, File: pos.Filename, Line: pos.Line,
					Suggestion: "dstruct." + strings.Replace(name, "NewPlain", "New", 1)}, true
			case (pkg.Name == "dstruct" || pkg.Name == "dsspy") && strings.HasPrefix(name, "New"):
				return Instance{Kind: KindDSspy, Type: full, File: pos.Filename, Line: pos.Line}, true
			case pkg.Name == "list" && name == "New":
				return Instance{Kind: KindContainerLl, Type: "list.New", File: pos.Filename, Line: pos.Line,
					Suggestion: "dstruct.NewLinkedList"}, true
			}
		}
	}
	return Instance{}, false
}

// classifyLit recognizes slice, array and map composite literals.
func classifyLit(fset *token.FileSet, lit *ast.CompositeLit) (Instance, bool) {
	pos := fset.Position(lit.Pos())
	switch t := lit.Type.(type) {
	case *ast.ArrayType:
		if t.Len == nil {
			return Instance{
				Kind: KindSliceLit, Type: typeString(t), File: pos.Filename, Line: pos.Line,
				Suggestion: suggestForElem("List", t.Elt),
			}, true
		}
		return Instance{
			Kind: KindArrayType, Type: typeString(t), File: pos.Filename, Line: pos.Line,
			Suggestion: suggestForElem("Array", t.Elt),
		}, true
	case *ast.MapType:
		return Instance{
			Kind: KindMapLit, Type: typeString(t), File: pos.Filename, Line: pos.Line,
			Suggestion: "dstruct.NewDictionary",
		}, true
	}
	return Instance{}, false
}

func suggestForElem(container string, elem ast.Expr) string {
	return fmt.Sprintf("dstruct.New%s[%s]", container, typeString(elem))
}

// typeString renders a type expression compactly.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.ArrayType:
		if t.Len == nil {
			return "[]" + typeString(t.Elt)
		}
		return "[" + typeString(t.Len) + "]" + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.ChanType:
		return "chan " + typeString(t.Value)
	case *ast.BasicLit:
		return t.Value
	case *ast.IndexExpr:
		return typeString(t.X) + "[" + typeString(t.Index) + "]"
	case *ast.IndexListExpr:
		parts := make([]string, len(t.Indices))
		for i, ix := range t.Indices {
			parts[i] = typeString(ix)
		}
		return typeString(t.X) + "[" + strings.Join(parts, ", ") + "]"
	case *ast.InterfaceType:
		return "any"
	case *ast.StructType:
		return "struct{…}"
	case *ast.FuncType:
		return "func(…)"
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	default:
		return fmt.Sprintf("%T", e)
	}
}

func countLOC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// ScanDir scans every .go file under root (skipping testdata and hidden
// directories). Test files are included: the study counted every
// instantiation in a project.
func ScanDir(root string, readFile func(string) ([]byte, error)) (Result, error) {
	var res Result
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			name := d.Name()
			if strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := readFile(path)
		if err != nil {
			return err
		}
		fr, err := ScanSource(path, string(src))
		if err != nil {
			return err
		}
		res.Files = append(res.Files, fr)
		return nil
	})
	return res, err
}

// CountByKind tallies instances per kind.
func (r Result) CountByKind() map[Kind]int {
	m := map[Kind]int{}
	for _, f := range r.Files {
		for _, in := range f.Instances {
			m[in.Kind]++
		}
	}
	return m
}

// LOC returns total code lines.
func (r Result) LOC() int {
	n := 0
	for _, f := range r.Files {
		n += f.LOC
	}
	return n
}

// Instances returns every found instantiation.
func (r Result) Instances() []Instance {
	var out []Instance
	for _, f := range r.Files {
		out = append(out, f.Instances...)
	}
	return out
}

// Uninstrumented returns the raw allocations with instrumentation
// suggestions — the scanner's assistant output.
func (r Result) Uninstrumented() []Instance {
	var out []Instance
	for _, in := range r.Instances() {
		if in.Suggestion != "" {
			out = append(out, in)
		}
	}
	return out
}
