package goscan

import (
	"os"
	"testing"
)

const structSample = `package demo

type Engine struct {
	weights []float64
	lookup  map[string]int
	buf     [16]byte
	jobs    chan int
	name    string
	aux     *[]int
}

type Plain struct {
	a, b int
}

type Twin struct {
	xs, ys []float64
}
`

func TestScanStructs(t *testing.T) {
	structs, err := ScanStructs("demo.go", structSample)
	if err != nil {
		t.Fatal(err)
	}
	if len(structs) != 3 {
		t.Fatalf("structs = %d", len(structs))
	}
	byName := map[string]StructInfo{}
	for _, s := range structs {
		byName[s.Name] = s
	}
	eng := byName["Engine"]
	want := map[string]int{"slice": 2, "map": 1, "array": 1, "chan": 1}
	for kind, n := range want {
		if eng.Fields[kind] != n {
			t.Errorf("Engine %s = %d, want %d", kind, eng.Fields[kind], n)
		}
	}
	if len(byName["Plain"].Fields) != 0 {
		t.Errorf("Plain fields = %v", byName["Plain"].Fields)
	}
	if byName["Twin"].Fields["slice"] != 2 {
		t.Errorf("Twin slices = %d (multi-name field)", byName["Twin"].Fields["slice"])
	}
	if !eng.HasField("map") || eng.HasField("nothing") {
		t.Error("HasField wrong")
	}
}

func TestScanStructsParseError(t *testing.T) {
	if _, err := ScanStructs("x.go", "package {{"); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestAggregateStructs(t *testing.T) {
	structs, err := ScanStructs("demo.go", structSample)
	if err != nil {
		t.Fatal(err)
	}
	ss := AggregateStructs(structs)
	if ss.Structs != 3 {
		t.Fatalf("structs = %d", ss.Structs)
	}
	if ss.WithField["slice"] != 2 {
		t.Errorf("slice structs = %d", ss.WithField["slice"])
	}
	if got := ss.Fraction("slice"); got < 0.66 || got > 0.67 {
		t.Errorf("slice fraction = %v", got)
	}
	var empty StructStats
	if empty.Fraction("slice") != 0 {
		t.Error("empty fraction")
	}
}

// Dogfooding: this repository's own structs carry plenty of slice members —
// the Go analogue of "every third class contains a list member".
func TestStructStatsOwnRepo(t *testing.T) {
	res, err := ScanDir("../..", os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	var lists [][]StructInfo
	for _, f := range res.Files {
		src, err := os.ReadFile(f.Path)
		if err != nil {
			t.Fatal(err)
		}
		structs, err := ScanStructs(f.Path, string(src))
		if err != nil {
			t.Fatal(err)
		}
		lists = append(lists, structs)
	}
	ss := AggregateStructs(lists...)
	if ss.Structs < 30 {
		t.Fatalf("found only %d structs", ss.Structs)
	}
	if ss.Fraction("slice") < 0.2 {
		t.Errorf("slice-member fraction = %.2f — suspiciously low for this codebase", ss.Fraction("slice"))
	}
}
