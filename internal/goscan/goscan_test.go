package goscan

import (
	"os"
	"strings"
	"testing"
)

const sample = `package demo

import (
	"container/list"

	"dsspy/internal/dstruct"
)

type Engine struct {
	weights []float64
	index   map[string]int
}

func build(s *Session) {
	xs := make([]float64, 128)
	lookup := make(map[string]int, 16)
	jobs := make(chan int, 8)
	grid := [64]int{}
	names := []string{"a", "b"}
	pairs := map[int]string{1: "one"}
	ll := list.New()
	instrumented := dstruct.NewList[int](s)
	arr := dstruct.NewArray[float64](s, 10)
	plain := dstruct.NewPlainList[int]()
	_ = xs
	_, _, _, _, _, _, _, _, _ = lookup, jobs, grid, names, pairs, ll, instrumented, arr, plain
}
`

func TestScanSourceFindsAllKinds(t *testing.T) {
	res, err := ScanSource("demo.go", sample)
	if err != nil {
		t.Fatal(err)
	}
	if res.Package != "demo" {
		t.Errorf("package = %q", res.Package)
	}
	counts := map[Kind]int{}
	for _, in := range res.Instances {
		counts[in.Kind]++
	}
	want := map[Kind]int{
		KindSliceMake:   1,
		KindMapMake:     1,
		KindChanMake:    1,
		KindArrayType:   1,
		KindSliceLit:    1,
		KindMapLit:      1,
		KindContainerLl: 1,
		KindDSspy:       2,
		KindPlainTwin:   1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s = %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
}

func TestScanSourceSuggestions(t *testing.T) {
	res, err := ScanSource("demo.go", sample)
	if err != nil {
		t.Fatal(err)
	}
	bySugg := map[string]string{}
	for _, in := range res.Instances {
		bySugg[in.Type] = in.Suggestion
	}
	cases := map[string]string{
		"[]float64":                 "dstruct.NewList[float64]",
		"map[string]int":            "dstruct.NewDictionary",
		"[64]int":                   "dstruct.NewArray[int]",
		"list.New":                  "dstruct.NewLinkedList",
		"dstruct.NewPlainList[int]": "dstruct.NewList",
	}
	for typ, want := range cases {
		if got := bySugg[typ]; got != want {
			t.Errorf("suggestion for %s = %q, want %q", typ, got, want)
		}
	}
	// Instrumented containers need no suggestion.
	for _, in := range res.Instances {
		if in.Kind == KindDSspy && in.Suggestion != "" {
			t.Errorf("instrumented %s has suggestion %q", in.Type, in.Suggestion)
		}
	}
}

func TestScanSourceLinesAndTypes(t *testing.T) {
	res, err := ScanSource("demo.go", sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range res.Instances {
		if in.Line <= 0 || in.File != "demo.go" {
			t.Errorf("bad location: %+v", in)
		}
	}
	if res.LOC == 0 || res.LOC >= strings.Count(sample, "\n") {
		t.Errorf("LOC = %d", res.LOC)
	}
}

func TestScanSourceParseError(t *testing.T) {
	if _, err := ScanSource("broken.go", "package\n}{"); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestTypeStringShapes(t *testing.T) {
	src := `package p
func f(s *S) {
	a := make([]*pkg.Type, 1)
	b := make(map[[4]byte][]int)
	c := make(chan []byte)
	d := []func(…){}
	_ = a; _ = b; _ = c; _ = d
}`
	// The func-literal slice won't parse with the ellipsis glyph; use a
	// valid variant.
	src = strings.Replace(src, "[]func(…){}", "[]any{}", 1)
	res, err := ScanSource("t.go", src)
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, in := range res.Instances {
		types = append(types, in.Type)
	}
	joined := strings.Join(types, ";")
	for _, want := range []string{"[]*pkg.Type", "map[[4]byte][]int", "chan []byte", "[]any"} {
		if !strings.Contains(joined, want) {
			t.Errorf("types %v missing %q", types, want)
		}
	}
}

// TestScanOwnRepository runs the scanner over this repository — the
// dogfooding check: it must find the dstruct constructors the examples and
// apps use, and the raw slices the parallel variants allocate.
func TestScanOwnRepository(t *testing.T) {
	res, err := ScanDir("../..", os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Files) < 40 {
		t.Fatalf("scanned only %d files", len(res.Files))
	}
	counts := res.CountByKind()
	if counts[KindDSspy] < 50 {
		t.Errorf("found %d instrumented constructors, expected the apps' and examples' usage", counts[KindDSspy])
	}
	if counts[KindSliceMake] < 30 {
		t.Errorf("found %d make([]T) allocations", counts[KindSliceMake])
	}
	if res.LOC() < 10000 {
		t.Errorf("LOC = %d", res.LOC())
	}
	if len(res.Uninstrumented()) == 0 {
		t.Error("no instrumentation suggestions in a repo full of raw slices")
	}
}
