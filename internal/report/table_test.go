package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Name", "LOC", "Speedup").AlignRight(1, 2)
	tb.Title = "Table IV"
	tb.AddRow("Algorithmia", 2800, F2(1.83))
	tb.AddRow("Mandelbrot", 150, F2(3.00))
	tb.AddSeparator()
	tb.AddRow("Total", 2950, F2(2.13))
	out := tb.String()
	for _, want := range []string{"Table IV", "Algorithmia", "2800", "1.83", "3.00", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d, want 3", tb.NumRows())
	}
	// Right alignment: the shorter number must be padded on the left.
	lines := strings.Split(out, "\n")
	var algRow, manRow string
	for _, l := range lines {
		if strings.Contains(l, "Algorithmia") {
			algRow = l
		}
		if strings.Contains(l, "Mandelbrot") {
			manRow = l
		}
	}
	if idx1, idx2 := strings.Index(algRow, "2800"), strings.Index(manRow, "150"); idx2 <= idx1 {
		t.Errorf("right alignment broken:\n%q\n%q", algRow, manRow)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("A", "B").AlignRight(1)
	tb.Title = "T"
	tb.AddRow("x", 1)
	tb.AddSeparator()
	md := tb.Markdown()
	for _, want := range []string{"### T", "| A | B |", "|---|---:|", "| x | 1 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("A", "B", "C")
	tb.AddRow("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Error("short row dropped")
	}
}

func TestAlignRightOutOfRange(t *testing.T) {
	tb := NewTable("A").AlignRight(-1, 5) // must not panic
	tb.AddRow("x")
	if tb.String() == "" {
		t.Error("empty render")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("Name", "Value")
	tb.AddRow("plain", 1)
	tb.AddSeparator()
	tb.AddRow("with,comma", `quote"d`)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "Name,Value\nplain,1\n\"with,comma\",\"quote\"\"d\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.7692); got != "76.92%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F2(2.125); got != "2.12" && got != "2.13" {
		t.Errorf("F2 = %q", got)
	}
}
