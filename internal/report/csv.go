package report

import (
	"io"
	"strings"
)

// CSV renders the table as RFC-4180-style CSV (separators excluded), for
// feeding the regenerated tables into plotting tools.
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}
