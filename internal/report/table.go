// Package report renders aligned text tables and simple markdown, used by
// the experiment drivers to print the paper's tables.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Align controls column alignment.
type Align uint8

const (
	// Left-aligned column.
	Left Align = iota
	// Right-aligned column (numbers).
	Right
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// NewTable creates a table with the given column headers; all columns start
// left-aligned.
func NewTable(headers ...string) *Table {
	t := &Table{headers: headers, aligns: make([]Align, len(headers))}
	return t
}

// AlignRight marks the given column indexes right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.aligns) {
			t.aligns[c] = Right
		}
	}
	return t
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// NumRows returns the number of data rows (separators excluded).
func (t *Table) NumRows() int {
	n := 0
	for _, r := range t.rows {
		if r != nil {
			n++
		}
	}
	return n
}

func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); n > w[i] {
				w[i] = n
			}
		}
	}
	return w
}

func pad(s string, width int, a Align) string {
	gap := width - utf8.RuneCountInString(s)
	if gap <= 0 {
		return s
	}
	fill := strings.Repeat(" ", gap)
	if a == Right {
		return fill + s
	}
	return s + fill
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	widths := t.widths()
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRule := func() {
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	writeRule()
	for i, h := range t.headers {
		sb.WriteString(pad(h, widths[i], t.aligns[i]))
		sb.WriteString("  ")
	}
	sb.WriteByte('\n')
	writeRule()
	for _, row := range t.rows {
		if row == nil {
			writeRule()
			continue
		}
		for i, cell := range row {
			sb.WriteString(pad(cell, widths[i], t.aligns[i]))
			sb.WriteString("  ")
		}
		sb.WriteByte('\n')
	}
	writeRule()
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sb.WriteString("|")
	for _, a := range t.aligns {
		if a == Right {
			sb.WriteString("---:|")
		} else {
			sb.WriteString("---|")
		}
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Pct formats a fraction as a percentage with two decimals, the paper's
// style ("76.92%").
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }

// F2 formats a float with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }
