package apps

import (
	"strings"
	"time"

	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// WordWheelSolver reproduces the evaluation's puzzle solver: given a wheel
// of nine letters with a mandatory center letter, find every dictionary
// word that uses only wheel letters (respecting multiplicity) and contains
// the center letter.
//
// Table IV: 5 data structures, 2 use cases (1 true positive), reduction
// 60 %, speedup 1.50. The true positive is the dictionary scan — DSspy
// flags the repeated whole-dictionary reads as a disguised search
// (Frequent-Long-Read) and the parallel version searches letter chunks
// concurrently.

// wordWheels are the puzzle inputs; more than ten so the dictionary scan
// recurs often enough to be "frequent".
var wordWheels = []string{
	"aeglnrtsi", "oeuptrdns", "iaemcrtko", "ueyslandr",
	"oartliens", "ietgnmars", "aoupslent", "eidcrambo",
	"uoantiser", "eaoglints", "irmbanteo", "ysecarton",
}

// wheelCenter is the index of the mandatory letter within each wheel.
const wheelCenter = 4

// synthDictionary builds a deterministic pseudo-English word list. Size is
// the number of words.
func synthDictionary(size int) []string {
	const vowels = "aeiou"
	const consonants = "bcdglmnprst"
	r := newRNG(0x5EED)
	words := make([]string, size)
	var sb strings.Builder
	for i := range words {
		sb.Reset()
		n := 3 + r.intn(7)
		for j := 0; j < n; j++ {
			if j%2 == 0 {
				sb.WriteByte(consonants[r.intn(len(consonants))])
			} else {
				sb.WriteByte(vowels[r.intn(len(vowels))])
			}
		}
		words[i] = sb.String()
	}
	return words
}

// wheelMatches reports whether word can be built from the wheel's letters
// (with multiplicity) and contains the center letter.
func wheelMatches(word, wheel string, center byte) bool {
	if len(word) < 3 || !strings.Contains(word, string(center)) {
		return false
	}
	var avail [26]int8
	for i := 0; i < len(wheel); i++ {
		avail[wheel[i]-'a']++
	}
	for i := 0; i < len(word); i++ {
		c := word[i] - 'a'
		if avail[c] == 0 {
			return false
		}
		avail[c]--
	}
	return true
}

const wordWheelDictSize = 60000
const wordWheelInstDictSize = 4000

// WordWheelSolver returns the app descriptor.
func WordWheelSolver() *App {
	app := &App{
		Name:               "WordWheelSolver",
		Domain:             "Solver",
		PaperLOC:           110,
		PaperRuntime:       0.04,
		PaperSlowdown:      38.46,
		PaperReduction:     0.60,
		PaperSpeedup:       1.50,
		WantDataStructures: 5,
		WantUseCases:       2,
		WantTruePositives:  1,
		Instrumented:       wordWheelInstrumented,
		PlainTwin:          wordWheelTwin,
		Plain:              wordWheelPlain,
		Parallel:           wordWheelParallel,
		Regions:            wordWheelRegions,
	}
	app.Probes = []Probe{
		{
			Name: "dictionary scan", UseCase: "FLR",
			Seq: func() { wordWheelScanProbe(1) },
			Par: func(w int) { wordWheelScanProbe(w) },
		},
		{
			Name: "solution accumulation", UseCase: "LI",
			Seq: func() { wordWheelAppendProbe(1) },
			Par: func(w int) { wordWheelAppendProbe(w) },
		},
	}
	return app
}

var wordWheelProbeDict []string

// wordWheelScanProbe is the FLR region: one full dictionary scan per wheel.
func wordWheelScanProbe(workers int) {
	if wordWheelProbeDict == nil {
		wordWheelProbeDict = synthDictionary(wordWheelDictSize)
	}
	wheel := wordWheels[0]
	center := wheel[wheelCenter]
	par.Count(wordWheelProbeDict, workers, func(word string) bool {
		return wheelMatches(word, wheel, center)
	})
}

// wordWheelAppendProbe is the LI region: accumulating solutions. Appends
// are allocation-bound and need synchronization in parallel — the false
// positive of this app.
func wordWheelAppendProbe(workers int) {
	const n = 300000
	if workers <= 1 {
		var out []int
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		_ = out
		return
	}
	q := par.NewConcurrentQueue[int]()
	par.ForChunked(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q.Enqueue(i)
		}
	})
}

// wordWheelInstrumented: five data structures — the dictionary list, the
// results list, the wheel list, a letter-frequency array, and a seen-words
// set. The dictionary is scanned once per wheel (12 wheels > 10 patterns →
// Frequent-Long-Read); results accumulate in long insertion phases
// (Long-Insert).
func wordWheelInstrumented(s *trace.Session) {
	words := synthDictionary(wordWheelInstDictSize)

	dict := dstruct.NewListLabeled[string](s, "dictionary")
	for _, w := range words {
		dict.Add(w)
	}

	wheels := dstruct.NewListLabeled[string](s, "wheels")
	for _, w := range wordWheels {
		wheels.Add(w)
	}

	freq := dstruct.NewArrayLabeled[int](s, 26, "letter frequencies")
	results := dstruct.NewListLabeled[string](s, "solutions")
	lengths := dstruct.NewListLabeled[int](s, "wheel lengths")
	for _, w := range wordWheels[:6] {
		lengths.Add(len(w))
	}
	seen := dstruct.NewHashSet[string](s)

	for wi := 0; wi < wheels.Len(); wi++ {
		wheel := wheels.Get(wi)
		center := wheel[wheelCenter]
		for i := 0; i < dict.Len(); i++ {
			word := dict.Get(i)
			if wheelMatches(word, wheel, center) && !seen.Contains(word) {
				seen.Add(word)
				results.Add(word)
				for j := 0; j < len(word); j++ {
					c := int(word[j] - 'a')
					freq.Set(c, freq.Get(c)+1)
				}
			}
		}
	}
}

func wordWheelSolve(words []string, workers int) uint64 {
	var sum uint64
	seen := make(map[string]bool)
	for _, wheel := range wordWheels {
		center := wheel[wheelCenter]
		if workers <= 1 {
			for _, word := range words {
				if wheelMatches(word, wheel, center) && !seen[word] {
					seen[word] = true
					sum = sum*131 + uint64(len(word))
					for j := 0; j < len(word); j++ {
						sum += uint64(word[j])
					}
				}
			}
			continue
		}
		// Recommended action applied: chunked parallel scan, then a
		// deterministic sequential merge preserving dictionary order.
		matched := make([][]string, workers)
		par.ChunkIndexed(len(words), workers, func(chunk, lo, hi int) {
			var local []string
			for i := lo; i < hi; i++ {
				if wheelMatches(words[i], wheel, center) {
					local = append(local, words[i])
				}
			}
			matched[chunk] = local
		})
		for _, chunk := range matched {
			for _, word := range chunk {
				if !seen[word] {
					seen[word] = true
					sum = sum*131 + uint64(len(word))
					for j := 0; j < len(word); j++ {
						sum += uint64(word[j])
					}
				}
			}
		}
	}
	return sum
}

// wordWheelTwin mirrors the instrumented run (same dictionary size) on raw
// slices.
func wordWheelTwin() {
	words := synthDictionary(wordWheelInstDictSize)
	wordWheelSolve(words, 1)
}

func wordWheelPlain() uint64 {
	words := synthDictionary(wordWheelDictSize)
	return wordWheelSolve(words, 1)
}

func wordWheelParallel(workers int) uint64 {
	words := synthDictionary(wordWheelDictSize)
	return wordWheelSolve(words, workers)
}

// wordWheelRegions: dictionary construction and result merging are
// sequential; the per-wheel scans are parallelizable. The paper measures a
// 28.21 % sequential fraction for this program.
func wordWheelRegions() (seq, parT time.Duration) {
	var words []string
	seq += timeIt(func() { words = synthDictionary(wordWheelDictSize) })
	seen := make(map[string]bool)
	var sum uint64
	for _, wheel := range wordWheels {
		center := wheel[wheelCenter]
		var local []string
		parT += timeIt(func() {
			for _, word := range words {
				if wheelMatches(word, wheel, center) {
					local = append(local, word)
				}
			}
		})
		seq += timeIt(func() {
			for _, word := range local {
				if !seen[word] {
					seen[word] = true
					sum = sum*131 + uint64(len(word))
				}
			}
		})
	}
	_ = sum
	return seq, parT
}
