package apps

import (
	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// Algorithmia reproduces the evaluation's data-structures-and-algorithms
// library: sixteen unit-test-style scenarios, each exercising one container
// idiom, exactly the setup §V describes ("We selected 16 unit tests that are
// built to simulate typical data structure use cases").
//
// Table IV: 16 data structures, 4 use cases (2 true positives), reduction
// 75 %, slowdown 4.80, speedup 1.83. §V's findings: one Long-Insert on a
// random initialization (parallelizing it gave 1.35× but it runs once), one
// Frequent-Long-Read on a priority queue implemented on a list (the linear
// max scan; parallel search gave 2.30× at 100,000 elements), and two more
// initializations without speedup.

const (
	algPQInstrumented = 400    // priority-queue size in the profiled run
	algPQPlain        = 100000 // the paper's 100,000-element scenario
	algPQExtractions  = 300
	algBigInit        = 8 << 20
	algSmallInit      = 4096
)

// algPriority derives an element's effective priority — a little real work
// per comparison, as the library's unit tests compute derived keys rather
// than comparing raw values.
func algPriority(v float64) uint64 {
	u := uint64(v * (1 << 52))
	for k := 0; k < 24; k++ {
		u = mix64(u)
	}
	return u
}

// Algorithmia returns the app descriptor.
func Algorithmia() *App {
	app := &App{
		Name:               "Algorithmia",
		Domain:             "Library",
		PaperLOC:           2800,
		PaperRuntime:       0.50,
		PaperSlowdown:      4.80,
		PaperReduction:     0.75,
		PaperSpeedup:       1.83,
		WantDataStructures: 16,
		WantUseCases:       4,
		WantTruePositives:  2,
		Instrumented:       algInstrumented,
		PlainTwin:          algTwin,
		Plain:              algPlain,
		Parallel:           algParallel,
	}
	app.Probes = []Probe{
		{
			Name: "priority-queue max search", UseCase: "FLR",
			Seq: func() { algPQProbe(1) },
			Par: func(w int) { algPQProbe(w) },
		},
		{
			Name: "random list initialization", UseCase: "LI",
			Seq: func() { algInitProbe(algBigInit, 1) },
			Par: func(w int) { algInitProbe(algBigInit, w) },
		},
		{
			Name: "matrix-row initialization", UseCase: "LI",
			Seq: func() { algInitProbe(algSmallInit, 1) },
			Par: func(w int) { algInitProbe(algSmallInit, w) },
		},
		{
			Name: "lookup-table initialization", UseCase: "LI",
			Seq: func() { algInitProbe(algSmallInit, 1) },
			Par: func(w int) { algInitProbe(algSmallInit, w) },
		},
	}
	return app
}

// algInstrumented runs the sixteen unit-test scenarios, one container each.
func algInstrumented(s *trace.Session) {
	r := newRNG(0xA16)

	// 1. Random list initialization — the Long-Insert finding.
	randInit := dstruct.NewListLabeled[float64](s, "random init")
	for i := 0; i < 150; i++ {
		randInit.Add(r.float64n())
	}

	// 2. Priority queue implemented on a list — the Frequent-Long-Read
	// finding: every extraction scans the whole list for the maximum.
	pq := dstruct.NewListLabeled[float64](s, "priority queue on list")
	for i := 0; i < algPQInstrumented; i++ {
		pq.Add(r.float64n())
	}
	for e := 0; e < 40; e++ {
		maxIdx, maxVal := 0, algPriority(pq.Get(0))
		for i := 1; i < pq.Len(); i++ {
			if v := algPriority(pq.Get(i)); v > maxVal {
				maxIdx, maxVal = i, v
			}
		}
		pq.RemoveAt(maxIdx)
	}

	// 3 and 4. Two more long initializations (§V: "initializations without
	// speedup").
	rows := dstruct.NewListLabeled[int](s, "matrix rows")
	for i := 0; i < 120; i++ {
		rows.Add(i * i)
	}
	lookup := dstruct.NewListLabeled[int](s, "lookup table")
	for i := 0; i < 110; i++ {
		lookup.Add(i * 7)
	}

	// 5. Binary search over a sorted list: jumping probes, no pattern.
	sorted := dstruct.NewListLabeled[int](s, "binary search")
	for i := 0; i < 80; i++ {
		sorted.Add(i * 3)
	}
	for _, target := range []int{9, 60, 150, 239, 2} {
		lo, hi := 0, sorted.Len()-1
		for lo <= hi {
			mid := (lo + hi) / 2
			v := sorted.Get(mid)
			switch {
			case v == target:
				lo = hi + 1
			case v < target:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
	}

	// 6. Word-count dictionary.
	counts := dstruct.NewDictionary[int, int](s)
	for i := 0; i < 60; i++ {
		k := r.intn(12)
		v, _ := counts.Get(k)
		counts.Put(k, v+1)
	}

	// 7. Deduplication via hash set.
	dedupe := dstruct.NewHashSet[int](s)
	for i := 0; i < 50; i++ {
		dedupe.Add(r.intn(20))
	}

	// 8. Parenthesis matching on a real stack.
	parens := dstruct.NewStack[byte](s)
	for _, c := range []byte("(()(()))()(())") {
		if c == '(' {
			parens.Push(c)
		} else {
			parens.Pop()
		}
	}

	// 9. Breadth-first traversal on a real queue.
	bfs := dstruct.NewQueue[int](s)
	bfs.Enqueue(0)
	for bfs.Len() > 0 {
		n, _ := bfs.Dequeue()
		if n < 15 {
			bfs.Enqueue(2*n + 1)
			bfs.Enqueue(2*n + 2)
		}
	}

	// 10. Deque on a linked list.
	deque := dstruct.NewLinkedList[int](s)
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			deque.AddFirst(i)
		} else {
			deque.AddLast(i)
		}
	}
	for deque.Len() > 2 {
		deque.RemoveFirst()
		deque.RemoveLast()
	}

	// 11. Reverse and copy a small list.
	rev := dstruct.NewListLabeled[int](s, "reverse demo")
	for i := 0; i < 30; i++ {
		rev.Add(i)
	}
	rev.Reverse()
	_ = rev.ToSlice()

	// 12. Scattered array writes (transpose-ish indexing).
	grid := dstruct.NewArrayLabeled[int](s, 64, "grid")
	for i := 0; i < 48; i++ {
		grid.Set((i*13)%64, i)
	}

	// 13. Fibonacci memo dictionary.
	memo := dstruct.NewDictionary[int, uint64](s)
	var fib func(n int) uint64
	fib = func(n int) uint64 {
		if n < 2 {
			return uint64(n)
		}
		if v, ok := memo.Get(n); ok {
			return v
		}
		v := fib(n-1) + fib(n-2)
		memo.Put(n, v)
		return v
	}
	_ = fib(24)

	// 14. Repeated partial scans — regular but below every threshold.
	partial := dstruct.NewListLabeled[int](s, "partial scans")
	for i := 0; i < 20; i++ {
		partial.Add(i)
	}
	for c := 0; c < 5; c++ {
		for i := 0; i < 6; i++ {
			partial.Get(i)
		}
	}

	// 15. Sorted key-value store.
	store := dstruct.NewSortedList[int, int](s)
	for i := 0; i < 40; i++ {
		store.Put(r.intn(500), i)
	}
	for i := 0; i < 10; i++ {
		store.Get(r.intn(500))
	}

	// 16. Small scratch array with alternating access.
	scratch := dstruct.NewArrayLabeled[float64](s, 16, "scratch")
	for i := 0; i < 12; i++ {
		scratch.Set(i%16, float64(i))
		_ = scratch.Get((i * 5) % 16)
	}

	// 17–23. Further library fixtures: small, scattered, below every
	// threshold — they only widen the search space the profiler must
	// filter, as the paper's 16 unit tests did.
	histogram := dstruct.NewArrayLabeled[int](s, 32, "histogram")
	for i := 0; i < 40; i++ {
		b := (i * 11) % 32
		histogram.Set(b, histogram.Get(b)+1)
	}
	ring := dstruct.NewListLabeled[int](s, "ring buffer")
	for i := 0; i < 8; i++ {
		ring.Add(i)
	}
	for i := 0; i < 6; i++ {
		ring.Set(i%8, 100+i) // overwrite in place, ring-buffer style
	}
	_ = ring.Get(2)
	temps := dstruct.NewArrayLabeled[float64](s, 24, "temperatures")
	for i := 0; i < 24; i += 3 {
		temps.Set(i, float64(i))
	}
	names := dstruct.NewListLabeled[string](s, "names")
	for _, n := range []string{"heap", "trie", "deque", "rope", "treap"} {
		names.Add(n)
	}
	for i := 0; i < 4; i++ {
		names.Contains("trie")
	}
	matrix := dstruct.NewArrayLabeled[int](s, 64, "adjacency")
	for i := 0; i < 30; i++ {
		matrix.Get((i * 21) % 64)
	}
	window := dstruct.NewListLabeled[float64](s, "sliding window")
	for i := 0; i < 20; i++ {
		window.Add(float64(i))
	}
	winSum := 0.0
	for i := window.Len() - 5; i < window.Len(); i++ {
		winSum += window.Get(i)
	}
	_ = winSum
	samples := dstruct.NewArrayLabeled[float64](s, 40, "samples")
	for i := 39; i >= 0; i-- {
		samples.Set(i, float64(i)*0.5)
	}
	_ = samples.Get(0)
}

// algPQRun is the 100,000-element priority-queue scenario from §V.
func algPQRun(n, extractions, workers int) uint64 {
	r := newRNG(0xA16)
	items := make([]float64, n)
	for i := range items {
		items[i] = r.float64n()
	}
	var sum uint64
	less := func(a, b float64) bool { return a < b }
	for e := 0; e < extractions; e++ {
		var maxIdx int
		if workers <= 1 {
			maxIdx = 0
			for i := 1; i < len(items); i++ {
				if items[maxIdx] < items[i] {
					maxIdx = i
				}
			}
		} else {
			maxIdx = par.MaxIndex(items, workers, less)
		}
		sum = sum*31 + uint64(maxIdx)
		items[maxIdx] = items[len(items)-1]
		items = items[:len(items)-1]
	}
	return sum
}

// algTwin mirrors the instrumented scenarios on raw containers.
func algTwin() {
	r := newRNG(0xA16)

	randInit := make([]float64, 0, 150)
	for i := 0; i < 150; i++ {
		randInit = append(randInit, r.float64n())
	}
	_ = randInit

	items := make([]float64, 0, algPQInstrumented)
	for i := 0; i < algPQInstrumented; i++ {
		items = append(items, r.float64n())
	}
	for e := 0; e < 40; e++ {
		maxIdx, maxVal := 0, algPriority(items[0])
		for i := 1; i < len(items); i++ {
			if v := algPriority(items[i]); v > maxVal {
				maxIdx, maxVal = i, v
			}
		}
		items[maxIdx] = items[len(items)-1]
		items = items[:len(items)-1]
	}

	rows := make([]int, 0, 120)
	for i := 0; i < 120; i++ {
		rows = append(rows, i*i)
	}
	lookup := make([]int, 0, 110)
	for i := 0; i < 110; i++ {
		lookup = append(lookup, i*7)
	}
	sorted := make([]int, 0, 80)
	for i := 0; i < 80; i++ {
		sorted = append(sorted, i*3)
	}
	for _, target := range []int{9, 60, 150, 239, 2} {
		lo, hi := 0, len(sorted)-1
		for lo <= hi {
			mid := (lo + hi) / 2
			switch {
			case sorted[mid] == target:
				lo = hi + 1
			case sorted[mid] < target:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
	}
	counts := map[int]int{}
	for i := 0; i < 60; i++ {
		counts[r.intn(12)]++
	}
	dedupe := map[int]struct{}{}
	for i := 0; i < 50; i++ {
		dedupe[r.intn(20)] = struct{}{}
	}
	var parens []byte
	for _, c := range []byte("(()(()))()(())") {
		if c == '(' {
			parens = append(parens, c)
		} else if len(parens) > 0 {
			parens = parens[:len(parens)-1]
		}
	}
	var bfs []int
	bfs = append(bfs, 0)
	for len(bfs) > 0 {
		n := bfs[0]
		bfs = bfs[1:]
		if n < 15 {
			bfs = append(bfs, 2*n+1, 2*n+2)
		}
	}
	memo := map[int]uint64{}
	var fib func(n int) uint64
	fib = func(n int) uint64 {
		if n < 2 {
			return uint64(n)
		}
		if v, ok := memo[n]; ok {
			return v
		}
		v := fib(n-1) + fib(n-2)
		memo[n] = v
		return v
	}
	_ = fib(24)
	_ = rows
	_ = lookup
}

func algPlain() uint64 {
	sum := algPQRun(algPQPlain, algPQExtractions, 1)
	sum = sum*31 + algInit(algBigInit, 1)
	sum = sum*31 + algInit(algSmallInit, 1)
	sum = sum*31 + algInit(algSmallInit, 1)
	return sum
}

func algParallel(workers int) uint64 {
	sum := algPQRun(algPQPlain, algPQExtractions, workers)
	sum = sum*31 + algInit(algBigInit, workers)
	sum = sum*31 + algInit(algSmallInit, workers)
	sum = sum*31 + algInit(algSmallInit, workers)
	return sum
}

// algInit fills a buffer with derived pseudo-random values; the parallel
// version applies the Long-Insert recommendation.
func algInit(n, workers int) uint64 {
	buf := make([]uint64, n)
	par.FillFunc(buf, workers, func(i int) uint64 { return mix64(uint64(i)) })
	return buf[0] ^ buf[n-1] ^ buf[n/2]
}

func algPQProbe(workers int) { algPQRun(algPQPlain, 40, workers) }

func algInitProbe(n, workers int) { algInit(n, workers) }
