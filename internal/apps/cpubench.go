package apps

import (
	"math"
	"time"

	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// CPUBenchmarks reproduces the evaluation's benchmark suite combining the
// two classic CPU benchmarks Linpack (dense LU factorization and solve) and
// Whetstone (scalar floating-point kernels). Table IV: 7 data structures,
// 5 use cases (4 true positives), reduction 28.57 %, slowdown 55, speedup
// 1.20 — the weakest speedup in the suite, which §V explains with a 94.29 %
// sequential fraction (Table VI): the elimination kernel is inherently
// order-dependent, so only the bookkeeping around it parallelizes.

const (
	linpackNInst   = 32 // instrumented problem size
	linpackNPlain  = 260
	linpackPasses  = 12
	whetModules    = 8
	whetIterations = 15
)

// --- Plain Linpack core (on raw slices) ---

// linpackMatgen fills a column-major n×n matrix with deterministic values
// and returns the scale reference.
func linpackMatgen(a []float64, b []float64, n int) {
	r := newRNG(0x11AC)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a[j*n+i] = r.float64n() - 0.5
		}
	}
	for i := 0; i < n; i++ {
		b[i] = 0
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			b[i] += a[j*n+i]
		}
	}
}

// linpackFactor performs LU factorization with partial pivoting (dgefa).
func linpackFactor(a []float64, ipvt []int, n int) {
	for k := 0; k < n-1; k++ {
		// Find pivot.
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[k*n+i]) > math.Abs(a[k*n+p]) {
				p = i
			}
		}
		ipvt[k] = p
		if a[k*n+p] == 0 {
			continue
		}
		if p != k {
			a[k*n+p], a[k*n+k] = a[k*n+k], a[k*n+p]
		}
		t := -1.0 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[k*n+i] *= t
		}
		for j := k + 1; j < n; j++ {
			tj := a[j*n+p]
			if p != k {
				a[j*n+p], a[j*n+k] = a[j*n+k], a[j*n+p]
			}
			for i := k + 1; i < n; i++ {
				a[j*n+i] += tj * a[k*n+i]
			}
		}
	}
	ipvt[n-1] = n - 1
}

// linpackSolve solves the factored system in place (dgesl).
func linpackSolve(a []float64, b []float64, ipvt []int, n int) {
	for k := 0; k < n-1; k++ {
		p := ipvt[k]
		t := b[p]
		if p != k {
			b[p], b[k] = b[k], b[p]
		}
		for i := k + 1; i < n; i++ {
			b[i] += t * a[k*n+i]
		}
	}
	for k := n - 1; k >= 0; k-- {
		b[k] /= a[k*n+k]
		t := -b[k]
		for i := 0; i < k; i++ {
			b[i] += t * a[k*n+i]
		}
	}
}

// linpackResidual returns the max-norm residual of the solve.
func linpackResidual(aRef, x, bRef []float64, n int) float64 {
	worst := 0.0
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += aRef[j*n+i] * x[j]
		}
		if d := math.Abs(sum - bRef[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// --- Plain Whetstone kernels ---

func whetModule(module, iters int, e1 []float64) float64 {
	t := 0.499975
	x := 1.0
	switch module % 4 {
	case 0: // simple identities
		for i := 0; i < iters*400; i++ {
			x = (x + 1) * t / (x + 2)
		}
	case 1: // array writes
		for i := 0; i < iters*120; i++ {
			e1[0] = (x + e1[3]) * t
			e1[1] = e1[0] * 1.0001
			e1[2] = e1[1] - x
			e1[3] = e1[2] * t
			x = e1[3]*0.001 + 1
		}
	case 2: // trig
		for i := 0; i < iters*60; i++ {
			x = math.Sin(x) + math.Cos(x) + 1.1
		}
	case 3: // exp/log/sqrt
		for i := 0; i < iters*60; i++ {
			x = math.Sqrt(math.Exp(math.Log(math.Abs(x)+1) / 1.1))
		}
	}
	return x + e1[0]
}

// CPUBenchmarks returns the app descriptor.
func CPUBenchmarks() *App {
	app := &App{
		Name:               "CPU Benchmarks",
		Domain:             "Benchmark",
		PaperLOC:           400,
		PaperRuntime:       0.01,
		PaperSlowdown:      55.0,
		PaperReduction:     0.2857,
		PaperSpeedup:       1.20,
		WantDataStructures: 7,
		WantUseCases:       5,
		WantTruePositives:  4,
		Instrumented:       cpuInstrumented,
		PlainTwin:          cpuTwin,
		Plain:              cpuPlain,
		Parallel:           cpuParallel,
		Regions:            cpuRegions,
	}
	app.Probes = []Probe{
		{
			Name: "result-series aggregation (linpack)", UseCase: "LI",
			Seq: func() { cpuAggProbe(1) },
			Par: func(w int) { cpuAggProbe(w) },
		},
		{
			Name: "result-series aggregation (whetstone)", UseCase: "LI",
			Seq: func() { cpuAggProbe(1) },
			Par: func(w int) { cpuAggProbe(w) },
		},
		{
			Name: "residual validation scans", UseCase: "FLR",
			Seq: func() { cpuScanProbe(1) },
			Par: func(w int) { cpuScanProbe(w) },
		},
		{
			Name: "timing-series scans", UseCase: "FLR",
			Seq: func() { cpuScanProbe(1) },
			Par: func(w int) { cpuScanProbe(w) },
		},
		{
			Name: "pivot-vector scans", UseCase: "FLR",
			Seq: func() { cpuTinyScanProbe(1) },
			Par: func(w int) { cpuTinyScanProbe(w) },
		},
	}
	return app
}

// cpuInstrumented runs both benchmarks against seven instrumented
// containers: the Linpack matrix, right-hand-side vector and pivot vector
// (operated in place, like the original), the Whetstone scratch array, and
// three bookkeeping series. The kernel's element-wise access through the
// proxy layer is what gives this program the evaluation's largest slowdown.
func cpuInstrumented(s *trace.Session) {
	n := linpackNInst

	matrix := dstruct.NewArrayLabeled[float64](s, n*n, "linpack matrix")
	bVec := dstruct.NewArrayLabeled[float64](s, n, "right-hand side")
	ipvt := dstruct.NewArrayLabeled[int](s, n, "pivot vector")
	linpackResults := dstruct.NewListLabeled[float64](s, "linpack results")
	whetResults := dstruct.NewListLabeled[float64](s, "whetstone results")
	whetTimings := dstruct.NewListLabeled[float64](s, "whetstone timings")
	e1 := dstruct.NewArrayLabeled[float64](s, 4, "whetstone scratch")

	rawA := make([]float64, n*n)
	rawB := make([]float64, n)

	for pass := 0; pass < linpackPasses; pass++ {
		linpackMatgen(rawA, rawB, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				matrix.Set(j*n+i, rawA[j*n+i])
			}
		}
		for i := 0; i < n; i++ {
			bVec.Set(i, rawB[i])
		}
		linpackFactorInst(matrix, ipvt, n)
		linpackSolveInst(matrix, bVec, ipvt, n)

		// Validation: the pivot order is checked every pass; the solution
		// itself only on the last one.
		worst := 0.0
		if pass == linpackPasses-1 {
			for i := 0; i < n; i++ {
				if d := math.Abs(bVec.Get(i)); d > worst {
					worst = d
				}
			}
		}
		order := 0
		for i := 0; i < n; i++ {
			order += ipvt.Get(i)
		}
		// Nine metrics per pass → a >100-event insertion phase overall.
		linpackResults.Add(worst)
		linpackResults.Add(float64(order))
		linpackResults.Add(float64(n))
		linpackResults.Add(float64(pass))
		linpackResults.Add(worst * 2)
		linpackResults.Add(worst / 2)
		linpackResults.Add(float64(order % 7))
		linpackResults.Add(float64(pass * pass))
		linpackResults.Add(worst + float64(order))
	}
	// One summary scan over the collected series.
	total := 0.0
	for i := 0; i < linpackResults.Len(); i++ {
		total += linpackResults.Get(i)
	}

	// Whetstone: per benchmark cycle the result series fills in a long
	// insertion phase, is scanned once, and is cleared — the Figure 3
	// profile, firing both Long-Insert and Frequent-Long-Read.
	rawE1 := []float64{1, -1, -1, -1}
	for i, v := range rawE1 {
		e1.Set(i, v)
	}
	const whetCycles = 12
	for cycle := 0; cycle < whetCycles; cycle++ {
		for iter := 0; iter < whetIterations; iter++ {
			for m := 0; m < whetModules; m++ {
				x := whetModule(m, 1, rawE1)
				if m%4 == 1 {
					for i, v := range rawE1 {
						e1.Set(i, v)
					}
					x += e1.Get(0)
				}
				whetResults.Add(x)
			}
		}
		sum := 0.0
		for i := 0; i < whetResults.Len(); i++ {
			sum += whetResults.Get(i)
		}
		whetTimings.Add(sum + float64(cycle))
		whetResults.Clear()
	}
	for c := 0; c < 12; c++ {
		minV, maxV := math.Inf(1), math.Inf(-1)
		for i := 0; i < whetTimings.Len(); i++ {
			v := whetTimings.Get(i)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		_, _ = minV, maxV
	}
}

// linpackFactorInst is linpackFactor operating element-wise through the
// instrumented containers, the way the Roslyn-instrumented original would.
func linpackFactorInst(a *dstruct.Array[float64], ipvt *dstruct.Array[int], n int) {
	for k := 0; k < n-1; k++ {
		p := k
		best := math.Abs(a.Get(k*n + p))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.Get(k*n + i)); v > best {
				p, best = i, v
			}
		}
		ipvt.Set(k, p)
		pivot := a.Get(k*n + p)
		if pivot == 0 {
			continue
		}
		if p != k {
			a.Set(k*n+p, a.Get(k*n+k))
			a.Set(k*n+k, pivot)
		}
		t := -1.0 / a.Get(k*n+k)
		for i := k + 1; i < n; i++ {
			a.Set(k*n+i, a.Get(k*n+i)*t)
		}
		for j := k + 1; j < n; j++ {
			tj := a.Get(j*n + p)
			if p != k {
				a.Set(j*n+p, a.Get(j*n+k))
				a.Set(j*n+k, tj)
			}
			for i := k + 1; i < n; i++ {
				a.Set(j*n+i, a.Get(j*n+i)+tj*a.Get(k*n+i))
			}
		}
	}
	ipvt.Set(n-1, n-1)
}

// linpackSolveInst is linpackSolve through the instrumented containers.
func linpackSolveInst(a *dstruct.Array[float64], b *dstruct.Array[float64], ipvt *dstruct.Array[int], n int) {
	for k := 0; k < n-1; k++ {
		p := ipvt.Get(k)
		t := b.Get(p)
		if p != k {
			b.Set(p, b.Get(k))
			b.Set(k, t)
		}
		for i := k + 1; i < n; i++ {
			b.Set(i, b.Get(i)+t*a.Get(k*n+i))
		}
	}
	for k := n - 1; k >= 0; k-- {
		b.Set(k, b.Get(k)/a.Get(k*n+k))
		t := -b.Get(k)
		for i := 0; i < k; i++ {
			b.Set(i, b.Get(i)+t*a.Get(k*n+i))
		}
	}
}

// cpuRun executes the plain suite; workers>1 applies the recommended
// actions to the flagged regions (generation, validation, aggregation) while
// the factorization stays sequential — hence the weak overall speedup.
func cpuRun(workers int) uint64 {
	n := linpackNPlain
	var check uint64

	a := make([]float64, n*n)
	b := make([]float64, n)
	aRef := make([]float64, n*n)
	bRef := make([]float64, n)
	ipvt := make([]int, n)

	for pass := 0; pass < 3; pass++ {
		linpackMatgen(a, b, n)
		copy(aRef, a)
		copy(bRef, b)
		linpackFactor(a, ipvt, n) // sequential: loop-carried dependences
		linpackSolve(a, b, ipvt, n)
		var res float64
		if workers <= 1 {
			res = linpackResidual(aRef, b, bRef, n)
		} else {
			partial := make([]float64, workers)
			par.ChunkIndexed(n, workers, func(chunk, lo, hi int) {
				worst := 0.0
				for i := lo; i < hi; i++ {
					sum := 0.0
					for j := 0; j < n; j++ {
						sum += aRef[j*n+i] * b[j]
					}
					if d := math.Abs(sum - bRef[i]); d > worst {
						worst = d
					}
				}
				partial[chunk] = worst
			})
			for _, p := range partial {
				if p > res {
					res = p
				}
			}
		}
		check = check*31 + uint64(res*1e6)
	}

	e1 := []float64{1, -1, -1, -1}
	results := make([]float64, 0, whetModules*whetIterations*4)
	for iter := 0; iter < whetIterations*4; iter++ {
		for m := 0; m < whetModules; m++ {
			results = append(results, whetModule(m, 2, e1))
		}
	}
	var sum float64
	if workers <= 1 {
		for _, v := range results {
			sum += v
		}
	} else {
		sum = par.SumFloat64(results, workers)
	}
	check = check*31 + uint64(math.Abs(sum))
	return check
}

// cpuTwin mirrors the instrumented run (n=32, 12 passes, 12 whetstone
// cycles) on raw slices.
func cpuTwin() {
	n := linpackNInst
	a := make([]float64, n*n)
	b := make([]float64, n)
	ipvt := make([]int, n)
	for pass := 0; pass < linpackPasses; pass++ {
		linpackMatgen(a, b, n)
		linpackFactor(a, ipvt, n)
		linpackSolve(a, b, ipvt, n)
	}
	e1 := []float64{1, -1, -1, -1}
	for cycle := 0; cycle < 12; cycle++ {
		for iter := 0; iter < whetIterations; iter++ {
			for m := 0; m < whetModules; m++ {
				whetModule(m, 1, e1)
			}
		}
	}
}

func cpuPlain() uint64 { return cpuRun(1) }

func cpuParallel(workers int) uint64 { return cpuRun(workers) }

// cpuRegions measures the inherently sequential share (factor+solve and
// whetstone's scalar kernels) against the parallelizable share (generation,
// validation, aggregation). The paper reports 94.29 % sequential.
func cpuRegions() (seq, parT time.Duration) {
	n := linpackNPlain
	a := make([]float64, n*n)
	b := make([]float64, n)
	aRef := make([]float64, n*n)
	bRef := make([]float64, n)
	ipvt := make([]int, n)
	for pass := 0; pass < 3; pass++ {
		parT += timeIt(func() {
			linpackMatgen(a, b, n)
			copy(aRef, a)
			copy(bRef, b)
		})
		seq += timeIt(func() {
			linpackFactor(a, ipvt, n)
			linpackSolve(a, b, ipvt, n)
		})
		parT += timeIt(func() { linpackResidual(aRef, b, bRef, n) })
	}
	e1 := []float64{1, -1, -1, -1}
	seq += timeIt(func() {
		for iter := 0; iter < whetIterations*4; iter++ {
			for m := 0; m < whetModules; m++ {
				whetModule(m, 2, e1)
			}
		}
	})
	return seq, parT
}

// cpuAggProbe: parallel aggregation over a result series.
func cpuAggProbe(workers int) {
	data := make([]float64, 1<<21)
	for i := range data {
		data[i] = float64(i % 97)
	}
	if workers <= 1 {
		s := 0.0
		for _, v := range data {
			s += v
		}
		_ = s
		return
	}
	par.SumFloat64(data, workers)
}

// cpuScanProbe: repeated min/max scans over a series.
func cpuScanProbe(workers int) {
	data := make([]float64, 1<<21)
	for i := range data {
		data[i] = float64(mix64(uint64(i)) % 1000)
	}
	if workers <= 1 {
		worst := 0.0
		for _, v := range data {
			if v > worst {
				worst = v
			}
		}
		_ = worst
		return
	}
	par.MaxIndex(data, workers, func(a, b float64) bool { return a < b })
}

// cpuTinyScanProbe: the pivot vector is too small for parallel scanning to
// pay off — the suite's false positive.
func cpuTinyScanProbe(workers int) {
	data := make([]int, linpackNPlain)
	for i := range data {
		data[i] = i
	}
	for rep := 0; rep < 2000; rep++ {
		if workers <= 1 {
			s := 0
			for _, v := range data {
				s += v
			}
			_ = s
		} else {
			par.Reduce(data, workers, 0, func(a, b int) int { return a + b })
		}
	}
}
