package apps

import (
	"fmt"
	"strings"

	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// AstroGrep reproduces the evaluation's file-search tool: load a set of text
// files, then run a series of plain-text queries over every line, collecting
// matches. Table IV: 21 data structures, 2 use cases (1 true positive),
// reduction 90.48 %, slowdown 1.21, speedup 2.90. The true positive is the
// line scan: DSspy flags the repeated whole-corpus reads (Frequent-Long-
// Read) and the parallel version searches line chunks concurrently; the
// second finding, long insertions into the result list, does not profit —
// appends are memory-bound and need a lock once parallel.

// grepQueries are the search terms; more than ten so the scans are
// "frequent".
var grepQueries = []string{
	"error", "warn", "timeout", "retry", "packet", "socket",
	"index", "cache", "flush", "commit", "rollback", "deadline",
	"lease", "quorum", "replica",
}

const (
	grepFiles         = 12
	grepLinesPerFile  = 60 // instrumented corpus: per-file lists stay short
	grepPlainLines    = 300000
	grepPlainWordsMin = 4
)

// synthLine builds a deterministic pseudo log line.
func synthLine(r *rng) string {
	words := []string{
		"error", "warn", "info", "timeout", "retry", "packet", "socket",
		"index", "cache", "flush", "commit", "rollback", "deadline",
		"lease", "quorum", "replica", "node", "shard", "write", "read",
		"queue", "worker", "task", "batch", "merge", "scan",
	}
	var sb strings.Builder
	n := grepPlainWordsMin + r.intn(6)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(words[r.intn(len(words))])
	}
	return sb.String()
}

// AstroGrep returns the app descriptor.
func AstroGrep() *App {
	app := &App{
		Name:               "Astrogrep",
		Domain:             "File Search",
		PaperLOC:           4800,
		PaperRuntime:       4.80,
		PaperSlowdown:      1.21,
		PaperReduction:     0.9048,
		PaperSpeedup:       2.90,
		WantDataStructures: 21,
		WantUseCases:       2,
		WantTruePositives:  1,
		Instrumented:       grepInstrumented,
		PlainTwin:          grepTwin,
		Plain:              grepPlain,
		Parallel:           grepParallel,
	}
	app.Probes = []Probe{
		{
			Name: "line scan", UseCase: "FLR",
			Seq: func() { grepScanProbe(1) },
			Par: func(w int) { grepScanProbe(w) },
		},
		{
			Name: "result accumulation", UseCase: "LI",
			Seq: func() { grepAppendProbe(1) },
			Par: func(w int) { grepAppendProbe(w) },
		},
	}
	return app
}

// grepInstrumented loads per-file line lists, flattens them into the search
// corpus, and runs every query. 21 data structures: 12 per-file lists, the
// flattened corpus, the result list, file names, extensions, options, line
// numbers, a match-count dictionary, a context list, and a seen-files set.
func grepInstrumented(s *trace.Session) {
	r := newRNG(0xA57)

	fileNames := dstruct.NewListLabeled[string](s, "file names")
	extensions := dstruct.NewListLabeled[string](s, "extension filter")
	for _, e := range []string{".log", ".txt", ".md"} {
		extensions.Add(e)
	}
	options := dstruct.NewListLabeled[string](s, "search options")
	options.Add("case-insensitive")
	options.Add("whole-word=false")

	corpus := dstruct.NewListLabeled[string](s, "all lines")
	perFile := make([]*dstruct.List[string], grepFiles)
	for f := 0; f < grepFiles; f++ {
		name := fmt.Sprintf("file%02d.log", f)
		fileNames.Add(name)
		lines := dstruct.NewListLabeled[string](s, name)
		for i := 0; i < grepLinesPerFile; i++ {
			lines.Add(synthLine(r))
		}
		perFile[f] = lines
	}
	// Flatten: one read pass per file list, appends into the corpus.
	for _, lines := range perFile {
		for i := 0; i < lines.Len(); i++ {
			corpus.Add(lines.Get(i))
		}
	}

	results := dstruct.NewListLabeled[string](s, "search results")
	lineNums := dstruct.NewListLabeled[int](s, "match line numbers")
	matchCounts := dstruct.NewDictionary[string, int](s)
	context := dstruct.NewListLabeled[string](s, "context lines")
	seenFiles := dstruct.NewHashSet[int](s)

	for _, q := range grepQueries {
		hits := 0
		for i := 0; i < corpus.Len(); i++ {
			line := corpus.Get(i)
			if strings.Contains(line, q) {
				results.Add(q + ": " + line)
				if hits < 3 {
					lineNums.Add(i)
					context.Add(line)
					seenFiles.Add(i / grepLinesPerFile)
				}
				hits++
			}
		}
		matchCounts.Put(q, hits)
	}

	// Bookkeeping containers that stay below every threshold.
	recent := dstruct.NewListLabeled[string](s, "recent queries")
	for _, q := range grepQueries[:5] {
		recent.Add(q)
	}
	sizes := dstruct.NewArrayLabeled[int](s, grepFiles, "file sizes")
	for f := 0; f < grepFiles; f += 2 {
		sizes.Set(f, f*grepLinesPerFile)
	}
}

// grepCorpus builds the plain search corpus once per run.
func grepCorpus(n int) []string {
	r := newRNG(0xA57)
	lines := make([]string, n)
	for i := range lines {
		lines[i] = synthLine(r)
	}
	return lines
}

func grepSearch(lines []string, workers int) uint64 {
	var sum uint64
	for _, q := range grepQueries {
		if workers <= 1 {
			for _, line := range lines {
				if strings.Contains(line, q) {
					sum = sum*31 + uint64(len(line))
				}
			}
			continue
		}
		// The sequential fold is linear (s ← s·31 + len), so per-chunk
		// partial folds combine exactly: s ← s·31^count + partial.
		partial := make([]uint64, workers)
		counts := make([]int, workers)
		par.ChunkIndexed(len(lines), workers, func(chunk, lo, hi int) {
			var local uint64
			n := 0
			for i := lo; i < hi; i++ {
				if strings.Contains(lines[i], q) {
					local = local*31 + uint64(len(lines[i]))
					n++
				}
			}
			partial[chunk] = local
			counts[chunk] = n
		})
		for c := range partial {
			for k := 0; k < counts[c]; k++ {
				sum *= 31
			}
			sum += partial[c]
		}
	}
	return sum
}

// grepTwinSink keeps the twin's results observable so the compiler cannot
// elide any of the mirrored work.
var grepTwinSink uint64

// grepTwin mirrors grepInstrumented operation for operation on raw Go slices
// and maps — same per-file builds and formatted names, same flatten pass,
// same result-string concatenation and hit bookkeeping — so the floor/twin
// delta isolates the instrumentation layer (the PlainTwin contract,
// DESIGN.md §9) instead of charging missing application work to it.
func grepTwin() {
	r := newRNG(0xA57)

	fileNames := make([]string, 0)
	extensions := make([]string, 0)
	for _, e := range []string{".log", ".txt", ".md"} {
		extensions = append(extensions, e)
	}
	options := make([]string, 0)
	options = append(options, "case-insensitive")
	options = append(options, "whole-word=false")

	corpus := make([]string, 0)
	perFile := make([][]string, grepFiles)
	for f := 0; f < grepFiles; f++ {
		name := fmt.Sprintf("file%02d.log", f)
		fileNames = append(fileNames, name)
		lines := make([]string, 0)
		for i := 0; i < grepLinesPerFile; i++ {
			lines = append(lines, synthLine(r))
		}
		perFile[f] = lines
	}
	for _, lines := range perFile {
		for i := 0; i < len(lines); i++ {
			corpus = append(corpus, lines[i])
		}
	}

	results := make([]string, 0)
	lineNums := make([]int, 0)
	matchCounts := make(map[string]int)
	context := make([]string, 0)
	seenFiles := make(map[int]struct{})

	for _, q := range grepQueries {
		hits := 0
		for i := 0; i < len(corpus); i++ {
			line := corpus[i]
			if strings.Contains(line, q) {
				results = append(results, q+": "+line)
				if hits < 3 {
					lineNums = append(lineNums, i)
					context = append(context, line)
					seenFiles[i/grepLinesPerFile] = struct{}{}
				}
				hits++
			}
		}
		matchCounts[q] = hits
	}

	recent := make([]string, 0)
	for _, q := range grepQueries[:5] {
		recent = append(recent, q)
	}
	sizes := make([]int, grepFiles)
	for f := 0; f < grepFiles; f += 2 {
		sizes[f] = f * grepLinesPerFile
	}

	grepTwinSink = uint64(len(results) + len(lineNums) + len(context) +
		len(fileNames) + len(extensions) + len(options) + len(recent) +
		len(matchCounts) + len(seenFiles) + sizes[grepFiles-2])
}

func grepPlain() uint64 {
	return grepSearch(grepCorpus(grepPlainLines), 1)
}

func grepParallel(workers int) uint64 {
	return grepSearch(grepCorpus(grepPlainLines), workers)
}

// grepScanProbe is the FLR region in isolation.
var grepProbeCorpus []string

func grepScanProbe(workers int) {
	if grepProbeCorpus == nil {
		grepProbeCorpus = grepCorpus(grepPlainLines)
	}
	grepSearch(grepProbeCorpus, workers)
}

// grepAppendProbe is the LI region in isolation: accumulating results.
// Parallel appends must synchronize, so this one does not profit — the
// paper's false positive.
func grepAppendProbe(workers int) {
	const n = 400000
	if workers <= 1 {
		out := make([]int, 0, 16)
		for i := 0; i < n; i++ {
			out = append(out, i)
		}
		_ = out
		return
	}
	q := par.NewConcurrentQueue[int]()
	par.ForChunked(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			q.Enqueue(i)
		}
	})
}
