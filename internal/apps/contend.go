package apps

import (
	"runtime"
	"sync"

	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// Contend is the concurrency-aware evaluation program: a miniature ingest
// service whose data structures are shared across goroutines — a hit-counter
// map every worker writes, a list-FIFO hand-off between producers and one
// consumer, a read-mostly routing table, and a phase-separated frame buffer.
// It is not one of the paper's seven subjects (those are single-threaded);
// it exists to exercise the contention detectors end to end: the instrumented
// run uses simulated thread ids for a deterministic interleaving, and
// Plain/Parallel run the real thing with goroutines, before and after
// applying the advisor's container recommendations (par.ShardedMap,
// par.MPSCRing, sync.RWMutex, phase barriers).
//
// Registered via All(), not Apps(): the Apps() list reproduces Table IV and
// stays pinned to the paper's seven programs.

const (
	contendKeys   = 64   // distinct counter/routing keys
	contendOps    = 6000 // counter increments (plain/parallel)
	contendJobs   = 8000 // queue hand-offs (plain/parallel)
	contendFrames = 4096 // frame buffer cells
)

// Contend returns the app descriptor.
func Contend() *App {
	app := &App{
		Name:   "Contend",
		Domain: "Service",
		// Not part of Table IV; the Want* counts pin our own expectations:
		// five instances, six findings (LI on the scratch list, IQ+MQ on the
		// hand-off, CM on the counters, RMT on the routing table, PRW on the
		// frame buffer), of which the demoted naive queue swap (IQ) is the
		// one false positive.
		WantDataStructures: 5,
		WantUseCases:       6,
		WantTruePositives:  5,
		Instrumented:       contendInstrumented,
		PlainTwin:          func() { contendWorkload(1) },
		Plain:              func() uint64 { return contendWorkload(1) },
		Parallel:           contendWorkload,
	}
	app.Probes = []Probe{
		{
			Name: "queue hand-off", UseCase: "MQ",
			Seq: func() { contendQueueProbeList() },
			Par: func(w int) { contendQueueProbeRing(w) },
		},
		{
			Name: "shared counters", UseCase: "CM",
			Seq: func() { contendCounterProbe(1) },
			Par: func(w int) { contendCounterProbe(w) },
		},
		{
			Name: "routing reads", UseCase: "RMT",
			Seq: func() { contendRoutingProbe(1) },
			Par: func(w int) { contendRoutingProbe(w) },
		},
	}
	return app
}

// contendInstrumented emits the service's access profile with explicit
// simulated thread ids (Session.EmitAs) from one real goroutine, so the
// interleaving — and therefore the report — is deterministic, which the
// streaming/batch differential suite requires. The shapes mirror what the
// real workload below does with goroutines.
func contendInstrumented(s *trace.Session) {
	// Hit counters: four workers interleave inserts/updates/reads densely —
	// Contended-Map.
	counters := s.Register(trace.KindDictionary, "Dictionary[string,uint64]", "hit counters", 0)
	size := 0
	for i := 0; i < 240; i++ {
		thr := trace.ThreadID(1 + i%4)
		switch i % 3 {
		case 0:
			size++
			s.EmitAs(counters, trace.OpInsert, trace.NoIndex, size, thr)
		case 1:
			s.EmitAs(counters, trace.OpWrite, trace.NoIndex, size, thr)
		default:
			s.EmitAs(counters, trace.OpRead, trace.NoIndex, size, thr)
		}
	}

	// Job queue: three producers append at the back, one consumer reads and
	// deletes at the front — Implement-Queue (naive) + MPSC-Queue (shape).
	jobs := s.Register(trace.KindList, "List[job]", "job queue", 0)
	qlen := 0
	for c := 0; c < 60; c++ {
		for p := 0; p < 3; p++ {
			s.EmitAs(jobs, trace.OpInsert, qlen, qlen+1, trace.ThreadID(1+p))
			qlen++
		}
		s.EmitAs(jobs, trace.OpRead, 0, qlen, 4)
		qlen--
		s.EmitAs(jobs, trace.OpDelete, 0, qlen, 4)
	}

	// Routing table: built once by the owner, then read-dominated across four
	// threads with rare owner writes — Read-Mostly-Table.
	routes := s.Register(trace.KindDictionary, "Dictionary[string,route]", "routing table", 0)
	rsize := 0
	for i := 0; i < 16; i++ {
		rsize++
		s.EmitAs(routes, trace.OpInsert, trace.NoIndex, rsize, 1)
	}
	for i := 0; i < 360; i++ {
		thr := trace.ThreadID(1 + i%4)
		s.EmitAs(routes, trace.OpRead, trace.NoIndex, rsize, thr)
		if i%72 == 36 {
			s.EmitAs(routes, trace.OpWrite, trace.NoIndex, rsize, 1)
		}
	}

	// Frame buffer: one single-thread write phase, then a long multi-thread
	// read phase, never interleaving writes — Phase-Separated-RW.
	frames := s.Register(trace.KindDictionary, "Dictionary[int,frame]", "frame buffer", 0)
	fsize := 0
	for i := 0; i < 96; i++ {
		fsize++
		s.EmitAs(frames, trace.OpInsert, trace.NoIndex, fsize, 1)
	}
	for i := 0; i < 24; i++ {
		s.EmitAs(frames, trace.OpRead, trace.NoIndex, fsize, 1)
	}
	for i := 0; i < 240; i++ {
		thr := trace.ThreadID(1 + i%4)
		s.EmitAs(frames, trace.OpRead, trace.NoIndex, fsize, thr)
	}

	// Scratch list: single-threaded control — the classic Long-Insert fires
	// and the instance carries no cross-thread state at all (the report must
	// not print a contention line for it).
	scratch := s.Register(trace.KindList, "List[int]", "scratch", 0)
	for i := 0; i < 150; i++ {
		s.EmitAs(scratch, trace.OpInsert, i, i+1, 1)
	}
	for i := 0; i < 12; i++ {
		s.EmitAs(scratch, trace.OpRead, i*12, 150, 1)
	}
}

// contendKey derives a deterministic key name for slot i.
func contendKey(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string([]byte{letters[i%26], letters[(i/26)%26], byte('0' + i%10)})
}

// contendWorkload is the real service: workers<=1 runs the original
// sequential program (single map, slice FIFO, plain routing table), workers>1
// runs the recommendation-applied version (sharded map, MPSC ring, RWMutex,
// phase barrier). Every checksum folds commutatively, so the two versions
// agree no matter how goroutines interleave.
func contendWorkload(workers int) uint64 {
	var sum uint64

	if workers <= 1 {
		// Shared counters, sequentially.
		counters := make(map[string]uint64, contendKeys)
		for i := 0; i < contendOps; i++ {
			counters[contendKey(i%contendKeys)] += uint64(i&7) + 1
		}
		for i := 0; i < contendKeys; i++ {
			k := contendKey(i)
			sum += mix64(uint64(i)<<32 ^ counters[k])
		}

		// Queue hand-off on a slice FIFO: O(n) front removal per job.
		queue := make([]uint64, 0, 64)
		next := 0
		for drained := 0; drained < contendJobs; {
			for b := 0; b < 4 && next < contendJobs; b++ {
				queue = append(queue, uint64(next))
				next++
			}
			v := queue[0]
			queue = queue[:copy(queue, queue[1:])]
			sum += mix64(v)
			drained++
		}

		// Routing lookups.
		routes := make(map[string]uint64, contendKeys)
		for i := 0; i < contendKeys; i++ {
			routes[contendKey(i)] = mix64(uint64(i))
		}
		for i := 0; i < contendOps; i++ {
			sum += routes[contendKey(i%contendKeys)] & 0xffff
		}

		// Frame buffer: write phase, then read phase.
		buf := make([]uint64, contendFrames)
		for i := range buf {
			buf[i] = mix64(uint64(i) ^ 0xC0)
		}
		for i := range buf {
			sum += buf[i] >> 48
		}
		return sum
	}

	// Recommendation applied: shard-by-key.
	counters := par.NewShardedMap[string, uint64](workers, par.HashString)
	par.ChunkIndexed(contendOps, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			d := uint64(i&7) + 1
			counters.Update(contendKey(i%contendKeys), func(v uint64) uint64 { return v + d })
		}
	})
	for i := 0; i < contendKeys; i++ {
		v, _ := counters.Get(contendKey(i))
		sum += mix64(uint64(i)<<32 ^ v)
	}

	// Recommendation applied: MPSC ring hand-off, one consumer goroutine.
	ring := par.NewMPSCRing[uint64](1024)
	var consumed uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for drained := 0; drained < contendJobs; {
			if v, ok := ring.TryDequeue(); ok {
				consumed += mix64(v)
				drained++
			} else {
				runtime.Gosched()
			}
		}
	}()
	par.ChunkIndexed(contendJobs, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			for !ring.TryEnqueue(uint64(i)) {
				runtime.Gosched()
			}
		}
	})
	<-done
	sum += consumed

	// Recommendation applied: RWMutex-wrapped routing table.
	routes := make(map[string]uint64, contendKeys)
	var mu sync.RWMutex
	for i := 0; i < contendKeys; i++ {
		routes[contendKey(i)] = mix64(uint64(i))
	}
	partial := make([]uint64, workers)
	par.ChunkIndexed(contendOps, workers, func(chunk, lo, hi int) {
		var local uint64
		for i := lo; i < hi; i++ {
			mu.RLock()
			local += routes[contendKey(i%contendKeys)] & 0xffff
			mu.RUnlock()
		}
		partial[chunk] = local
	})
	for _, p := range partial {
		sum += p
	}

	// Recommendation applied: parallel phases with a barrier between them
	// (par.For joins all workers before returning).
	buf := make([]uint64, contendFrames)
	par.For(contendFrames, workers, func(i int) {
		buf[i] = mix64(uint64(i) ^ 0xC0)
	})
	for i := 0; i < workers; i++ {
		partial[i] = 0
	}
	par.ChunkIndexed(contendFrames, workers, func(chunk, lo, hi int) {
		var local uint64
		for i := lo; i < hi; i++ {
			local += buf[i] >> 48
		}
		partial[chunk] = local
	})
	for _, p := range partial {
		sum += p
	}
	return sum
}

// contendQueueProbeList is the MQ region before the recommendation: the jobs
// flow through a slice used as a FIFO, every removal shifting the remainder —
// O(n) per job once the backlog builds.
func contendQueueProbeList() {
	const jobs = 60000
	queue := make([]uint64, 0, 64)
	next := 0
	var sum uint64
	// Producers run ahead of the consumer, so a backlog accumulates — the
	// situation the profile showed (the queue grows by two jobs per cycle).
	for next < jobs/2 {
		queue = append(queue, uint64(next))
		next++
	}
	for drained := 0; drained < jobs; {
		if next < jobs {
			queue = append(queue, uint64(next))
			next++
		}
		v := queue[0]
		queue = queue[:copy(queue, queue[1:])]
		sum += mix64(v)
		drained++
	}
	_ = sum
}

// contendQueueProbeRing is the same hand-off after the recommendation: the
// bounded MPSC ring pays O(1) at both ends regardless of backlog. workers
// producer goroutines feed one consumer.
func contendQueueProbeRing(workers int) {
	const jobs = 60000
	ring := par.NewMPSCRing[uint64](4096)
	var sum uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for drained := 0; drained < jobs; {
			if v, ok := ring.TryDequeue(); ok {
				sum += mix64(v)
				drained++
			} else {
				runtime.Gosched()
			}
		}
	}()
	par.ChunkIndexed(jobs, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			for !ring.TryEnqueue(uint64(i)) {
				runtime.Gosched()
			}
		}
	})
	<-done
}

// contendCounterProbe is the CM region: every increment on one mutex-guarded
// map (workers <= 1) versus the sharded map (workers > 1).
func contendCounterProbe(workers int) {
	const ops = 400000
	if workers <= 1 {
		var mu sync.Mutex
		m := make(map[string]uint64, contendKeys)
		for i := 0; i < ops; i++ {
			k := contendKey(i % contendKeys)
			mu.Lock()
			m[k]++
			mu.Unlock()
		}
		return
	}
	m := par.NewShardedMap[string, uint64](0, par.HashString)
	par.ChunkIndexed(ops, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Update(contendKey(i%contendKeys), func(v uint64) uint64 { return v + 1 })
		}
	})
}

// contendRoutingProbe is the RMT region: lookups through an exclusive mutex
// (workers <= 1) versus concurrent readers under an RWMutex (workers > 1).
func contendRoutingProbe(workers int) {
	const ops = 400000
	routes := make(map[string]uint64, contendKeys)
	for i := 0; i < contendKeys; i++ {
		routes[contendKey(i)] = mix64(uint64(i))
	}
	if workers <= 1 {
		var mu sync.Mutex
		var sum uint64
		for i := 0; i < ops; i++ {
			mu.Lock()
			sum += routes[contendKey(i%contendKeys)]
			mu.Unlock()
		}
		_ = sum
		return
	}
	var mu sync.RWMutex
	par.ChunkIndexed(ops, workers, func(_, lo, hi int) {
		var sum uint64
		for i := lo; i < hi; i++ {
			mu.RLock()
			sum += routes[contendKey(i%contendKeys)]
			mu.RUnlock()
		}
		_ = sum
	})
}
