package apps

import (
	"runtime"
	"testing"

	"dsspy/internal/core"
	"dsspy/internal/trace"
	"dsspy/internal/usecase"
)

// analyze runs the instrumented workload under DSspy.
func analyze(t *testing.T, app *App) *core.Report {
	t.Helper()
	return core.New().Run(app.Instrumented)
}

// TestAppDetectionMatchesTableIV pins every app's Table IV identity: the
// number of list/array-plus-other container instances and the number of
// parallel use cases DSspy detects.
func TestAppDetectionMatchesTableIV(t *testing.T) {
	totalDS, totalUC := 0, 0
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			rep := analyze(t, app)
			// The paper counts list and array instantiations — the two
			// structures DSspy implements its automatic analysis for.
			ds := rep.SearchSpace().Total
			if ds != app.WantDataStructures {
				t.Errorf("list/array instances = %d, want %d", ds, app.WantDataStructures)
			}
			par := rep.ParallelUseCases()
			if len(par) != app.WantUseCases {
				for _, u := range par {
					t.Logf("  detected: %s on %s %q (%s)", u.Kind, u.Instance.TypeName, u.Instance.Label, u.Evidence)
				}
				t.Errorf("parallel use cases = %d, want %d", len(par), app.WantUseCases)
			}
			totalDS += ds
			totalUC += len(par)
		})
	}
	// The evaluation's headline: 104 instances down to 24 use cases.
	if totalDS != 104 {
		t.Errorf("total data structures = %d, want 104", totalDS)
	}
	if totalUC != 24 {
		t.Errorf("total use cases = %d, want 24", totalUC)
	}
}

// TestAppParallelMatchesPlain asserts that applying the recommended actions
// preserves semantics: the parallel checksum equals the sequential one.
func TestAppParallelMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("full workloads in -short mode")
	}
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			plain := app.Plain()
			par := app.Parallel(4)
			if plain != par {
				t.Errorf("checksum mismatch: plain=%#x parallel=%#x", plain, par)
			}
		})
	}
}

// TestGPdotNETTableVShape checks that the five gpdotnet findings land on
// the three structures Table V names: FLR on the terminal-set array,
// FLR+LI on the population list, FLR+LI on the fitness array.
func TestGPdotNETTableVShape(t *testing.T) {
	rep := analyze(t, GPdotNET())
	type key struct {
		label string
		kind  usecase.Kind
	}
	found := map[key]bool{}
	for _, u := range rep.ParallelUseCases() {
		found[key{u.Instance.Label, u.Kind}] = true
	}
	want := []key{
		{"terminal set", usecase.FrequentLongRead},
		{"population (CHPopulation)", usecase.FrequentLongRead},
		{"population (CHPopulation)", usecase.LongInsert},
		{"fitness (FitnessProportionateSelection)", usecase.FrequentLongRead},
		{"fitness (FitnessProportionateSelection)", usecase.LongInsert},
	}
	for _, k := range want {
		if !found[k] {
			t.Errorf("missing Table V finding: %s on %q", k.kind, k.label)
		}
	}
	if len(found) != len(want) {
		t.Errorf("found %d findings, want %d: %v", len(found), len(want), found)
	}
}

// TestMandelbrotFindings pins the four §V findings to their structures.
func TestMandelbrotFindings(t *testing.T) {
	rep := analyze(t, Mandelbrot())
	byLabel := map[string][]usecase.Kind{}
	for _, u := range rep.ParallelUseCases() {
		byLabel[u.Instance.Label] = append(byLabel[u.Instance.Label], u.Kind)
	}
	for label, kinds := range map[string]usecase.Kind{
		"iteration image": usecase.LongInsert,
		"final image":     usecase.LongInsert,
		"y coordinates":   usecase.LongInsert,
		"x coordinates":   usecase.FrequentLongRead,
	} {
		got := byLabel[label]
		if len(got) != 1 || got[0] != kinds {
			t.Errorf("%q findings = %v, want [%s]", label, got, kinds)
		}
	}
}

// TestAlgorithmiaFindings: one FLR on the list-based priority queue, three
// Long-Inserts on initializations.
func TestAlgorithmiaFindings(t *testing.T) {
	rep := analyze(t, Algorithmia())
	var flrLabel string
	liCount := 0
	for _, u := range rep.ParallelUseCases() {
		switch u.Kind {
		case usecase.FrequentLongRead:
			flrLabel = u.Instance.Label
		case usecase.LongInsert:
			liCount++
		}
	}
	if flrLabel != "priority queue on list" {
		t.Errorf("FLR on %q, want the priority queue", flrLabel)
	}
	if liCount != 3 {
		t.Errorf("Long-Inserts = %d, want 3", liCount)
	}
}

// TestCPUBenchmarksFindings pins the suite's five findings to their
// bookkeeping structures — and, just as important, asserts the numeric
// kernels stay clean: the matrix, the right-hand side and the scratch array
// must not be flagged, because their access patterns are loop-carried, not
// parallelizable.
func TestCPUBenchmarksFindings(t *testing.T) {
	rep := analyze(t, CPUBenchmarks())
	byLabel := map[string][]usecase.Kind{}
	for _, u := range rep.ParallelUseCases() {
		byLabel[u.Instance.Label] = append(byLabel[u.Instance.Label], u.Kind)
	}
	wantSingle := map[string]usecase.Kind{
		"linpack results":   usecase.LongInsert,
		"pivot vector":      usecase.FrequentLongRead,
		"whetstone timings": usecase.FrequentLongRead,
	}
	for label, kind := range wantSingle {
		if got := byLabel[label]; len(got) != 1 || got[0] != kind {
			t.Errorf("%q findings = %v, want [%s]", label, got, kind)
		}
	}
	if got := byLabel["whetstone results"]; len(got) != 2 {
		t.Errorf("whetstone results findings = %v, want LI+FLR", got)
	}
	for _, label := range []string{"linpack matrix", "right-hand side", "whetstone scratch"} {
		if got := byLabel[label]; len(got) != 0 {
			t.Errorf("kernel structure %q flagged: %v", label, got)
		}
	}
}

// TestSearchToolFindings pins the two search tools' findings: the scanned
// corpus fires Frequent-Long-Read, the result accumulation Long-Insert.
func TestSearchToolFindings(t *testing.T) {
	cases := map[string][2]string{
		"Astrogrep":       {"all lines", "search results"},
		"Contentfinder":   {"merged content", "matches"},
		"WordWheelSolver": {"dictionary", "solutions"},
	}
	for name, labels := range cases {
		rep := analyze(t, ByName(name))
		byLabel := map[string]usecase.Kind{}
		for _, u := range rep.ParallelUseCases() {
			byLabel[u.Instance.Label] = u.Kind
		}
		if byLabel[labels[0]] != usecase.FrequentLongRead {
			t.Errorf("%s: %q = %v, want FLR", name, labels[0], byLabel[labels[0]])
		}
		if byLabel[labels[1]] != usecase.LongInsert {
			t.Errorf("%s: %q = %v, want LI", name, labels[1], byLabel[labels[1]])
		}
	}
}

// TestAppSearchSpaceReduction recomputes Table IV's reduction column with
// the paper's arithmetic (1 - useCases/dataStructures).
func TestAppSearchSpaceReduction(t *testing.T) {
	for _, app := range Apps() {
		rep := analyze(t, app)
		uc := len(rep.ParallelUseCases())
		ds := rep.SearchSpace().Total
		if ds == 0 {
			t.Fatalf("%s: no data structures", app.Name)
		}
		got := 1 - float64(uc)/float64(ds)
		if diff := got - app.PaperReduction; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: reduction = %.4f, paper %.4f", app.Name, got, app.PaperReduction)
		}
	}
}

// TestRegionsMeasurable: the Table VI apps report nonzero region times and
// the expected ordering of sequential fractions (CPU Benchmarks highest,
// gpdotnet lowest).
func TestRegionsMeasurable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing in -short mode")
	}
	fracs := map[string]float64{}
	for _, name := range []string{"CPU Benchmarks", "Gpdotnet", "Mandelbrot", "WordWheelSolver"} {
		app := ByName(name)
		if app == nil || app.Regions == nil {
			t.Fatalf("%s has no Regions", name)
		}
		seq, par := app.Regions()
		if seq <= 0 || par <= 0 {
			t.Errorf("%s: regions seq=%v par=%v", name, seq, par)
			continue
		}
		fracs[name] = float64(seq) / float64(seq+par)
	}
	if !(fracs["CPU Benchmarks"] > fracs["WordWheelSolver"] &&
		fracs["WordWheelSolver"] > fracs["Mandelbrot"] &&
		fracs["Gpdotnet"] < 0.3) {
		t.Errorf("sequential-fraction ordering off: %v", fracs)
	}
	if fracs["CPU Benchmarks"] < 0.5 {
		t.Errorf("CPU Benchmarks sequential fraction = %.2f, want dominant (paper: 0.94)", fracs["CPU Benchmarks"])
	}
}

// TestProbesPresent: every app carries one probe per expected use case
// (apps whose probes pair with multi-finding instances may have fewer).
func TestProbesPresent(t *testing.T) {
	for _, app := range Apps() {
		if len(app.Probes) == 0 {
			t.Errorf("%s has no probes", app.Name)
			continue
		}
		for _, p := range app.Probes {
			if p.Seq == nil || p.Par == nil || p.Name == "" || p.UseCase == "" {
				t.Errorf("%s: incomplete probe %+v", app.Name, p.Name)
			}
		}
	}
}

// TestProbeSpeedups classifies true positives on this machine; it only
// asserts when enough cores are present, and generously.
func TestProbeSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("timing in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skip("needs >=4 cores for stable speedups")
	}
	// The flagship true positives must parallelize on any multicore box.
	checks := []struct {
		app   string
		probe int
	}{
		{"Mandelbrot", 0},
		{"Algorithmia", 0},
		{"Gpdotnet", 1},
	}
	for _, c := range checks {
		app := ByName(c.app)
		sp := app.Probes[c.probe].Measure(runtime.NumCPU(), 3)
		if sp < 1.2 {
			t.Errorf("%s/%s: speedup %.2f, want >= 1.2", c.app, app.Probes[c.probe].Name, sp)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Mandelbrot") == nil {
		t.Error("ByName(Mandelbrot) = nil")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
	if len(Apps()) != 7 {
		t.Errorf("Apps() = %d", len(Apps()))
	}
}

var _ = trace.OpRead // keep the import when tests are trimmed
