package apps

import (
	"math"
	"time"

	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// GPdotNET reproduces the evaluation's genetic-programming engine for
// discrete time-series analysis: a population of expression-tree chromosomes
// evolves to fit a target series via fitness-proportionate (roulette)
// selection, crossover and mutation.
//
// Table IV: 37 data structures, 5 use cases (2 true positives), reduction
// 86.49 %, slowdown 216.67 (the suite's outlier), speedup 2.93. Table V
// pins the five findings: a Frequent-Long-Read on the terminal-set array,
// Frequent-Long-Read plus Long-Insert on the population list, and
// Frequent-Long-Read plus Long-Insert on the selection's fitness array.

const (
	gpPopulation     = 100
	gpGenerations    = 20
	gpGenome         = 16 // prefix-encoded expression length
	gpTerminals      = 400
	gpSeriesLen      = 8 // short series: event capture dominates, the paper's slowdown outlier
	gpEliteLists     = 30
	gpPlainPop       = 240
	gpPlainGens      = 60
	gpPlainSeriesLen = 600
)

// gpGene opcodes: 0..3 binary ops, 4 = variable x, 5+ = terminal constant.
const (
	gpAdd = iota
	gpSub
	gpMul
	gpDiv
	gpVar
	gpConstBase
)

// gpChromosome is a prefix-encoded expression over one variable.
type gpChromosome []uint8

// gpEval evaluates the prefix expression at x with the terminal constants;
// pos is threaded through the recursion.
func gpEval(c gpChromosome, pos *int, x float64, terminals []float64) float64 {
	if *pos >= len(c) {
		return 1
	}
	op := c[*pos]
	*pos++
	switch op {
	case gpAdd, gpSub, gpMul, gpDiv:
		a := gpEval(c, pos, x, terminals)
		b := gpEval(c, pos, x, terminals)
		switch op {
		case gpAdd:
			return a + b
		case gpSub:
			return a - b
		case gpMul:
			return a * b
		default:
			if math.Abs(b) < 1e-9 {
				return 1
			}
			return a / b
		}
	case gpVar:
		return x
	default:
		return terminals[int(op-gpConstBase)%len(terminals)]
	}
}

// gpRandomChromosome emits a genome biased toward leaves so expressions
// terminate early.
func gpRandomChromosome(r *rng, terminals int) gpChromosome {
	c := make(gpChromosome, gpGenome)
	for i := range c {
		switch r.intn(8) {
		case 0, 1:
			c[i] = uint8(r.intn(4)) // operator
		case 2, 3:
			c[i] = gpVar
		default:
			c[i] = uint8(gpConstBase + r.intn(250-gpConstBase))
		}
	}
	return c
}

// gpFitness is the negated mean squared error against the target series.
func gpFitness(c gpChromosome, xs, target, terminals []float64) float64 {
	var mse float64
	for i, x := range xs {
		pos := 0
		v := gpEval(c, &pos, x, terminals)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		d := v - target[i]
		mse += d * d
	}
	return 1.0 / (1.0 + mse/float64(len(xs)))
}

// gpTarget builds the discrete time series to fit.
func gpTarget(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x*x + 2*x + 1 + 0.5*math.Sin(3*x)
	}
	return out
}

// GPdotNET returns the app descriptor.
func GPdotNET() *App {
	app := &App{
		Name:               "Gpdotnet",
		Domain:             "Simulation",
		PaperLOC:           7000,
		PaperRuntime:       0.36,
		PaperSlowdown:      216.67,
		PaperReduction:     0.8649,
		PaperSpeedup:       2.93,
		WantDataStructures: 37,
		WantUseCases:       5,
		WantTruePositives:  2,
		Instrumented:       gpInstrumented,
		PlainTwin:          gpTwin,
		Plain:              gpPlain,
		Parallel:           gpParallel,
		Regions:            gpRegions,
	}
	app.Probes = []Probe{
		{
			Name: "terminal-set aggregation", UseCase: "FLR",
			Seq: func() { gpTerminalProbe(1) },
			Par: func(w int) { gpTerminalProbe(w) },
		},
		{
			Name: "population fitness search", UseCase: "FLR",
			Seq: func() { gpFitnessProbe(1) },
			Par: func(w int) { gpFitnessProbe(w) },
		},
		{
			Name: "population rebuild insertions", UseCase: "LI",
			Seq: func() { gpRebuildProbe(1) },
			Par: func(w int) { gpRebuildProbe(w) },
		},
		{
			Name: "selection array scan", UseCase: "FLR",
			Seq: func() { gpSelectionProbe(1) },
			Par: func(w int) { gpSelectionProbe(w) },
		},
		{
			Name: "selection array fill", UseCase: "LI",
			Seq: func() { gpSelectionFillProbe(1) },
			Par: func(w int) { gpSelectionFillProbe(w) },
		},
	}
	return app
}

// gpInstrumented runs the evolution against instrumented containers.
// 37 data structures: terminal set, population, fitness array, input
// series, function set, two dictionaries, and 30 per-elite gene lists.
func gpInstrumented(s *trace.Session) {
	r := newRNG(0x69D0)

	// Input series (small, a few scans — no finding).
	inputs := dstruct.NewListLabeled[float64](s, "time series")
	xs := make([]float64, gpSeriesLen)
	for i := range xs {
		xs[i] = -2 + 4*float64(i)/float64(gpSeriesLen)
		inputs.Add(xs[i])
	}
	target := gpTarget(xs)

	// Terminal set: generated once, aggregated every generation —
	// Table V's use case 1 (Frequent-Long-Read on GenerateTerminalSet).
	terminalSet := dstruct.NewArrayLabeled[float64](s, gpTerminals, "terminal set")
	rawTerminals := make([]float64, gpTerminals)
	for i := 0; i < gpTerminals; i++ {
		v := -10 + 20*r.float64n()
		rawTerminals[i] = v
		terminalSet.Set(i, v)
	}

	functions := dstruct.NewListLabeled[string](s, "function set")
	for _, f := range []string{"+", "-", "*", "/"} {
		functions.Add(f)
	}

	params := dstruct.NewDictionary[string, float64](s)
	params.Put("crossover", 0.85)
	params.Put("mutation", 0.05)
	stats := dstruct.NewDictionary[int, float64](s)

	// Population list and selection fitness array — Table V's use cases
	// 2+3 and 4+5.
	population := dstruct.NewListLabeled[int](s, "population (CHPopulation)")
	fitness := dstruct.NewArrayLabeled[float64](s, gpPopulation, "fitness (FitnessProportionateSelection)")

	chromos := make([]gpChromosome, 0, gpPopulation*2)
	newChromo := func() int {
		chromos = append(chromos, gpRandomChromosome(r, gpTerminals))
		return len(chromos) - 1
	}

	for i := 0; i < gpPopulation; i++ {
		population.Add(newChromo())
	}

	for gen := 0; gen < gpGenerations; gen++ {
		// Terminal-set aggregation: the "program loop that iterates over a
		// data structure to compute an aggregate value" from §V.
		aggregate := 0.0
		for i := 0; i < terminalSet.Len(); i++ {
			aggregate += terminalSet.Get(i)
		}

		// Fitness evaluation: read every chromosome, fill the fitness
		// array (its long write phase).
		for i := 0; i < population.Len(); i++ {
			ci := population.Get(i)
			fitness.Set(i, gpFitness(chromos[ci], xs, target, rawTerminals))
		}

		// Roulette selection: two full scans of the fitness array (sum,
		// then pick), plus one scan of the population for the elite.
		sum := 0.0
		for i := 0; i < fitness.Len(); i++ {
			sum += fitness.Get(i)
		}
		bestIdx, bestFit := 0, -1.0
		picks := make([]int, gpPopulation)
		threshold := r.float64n() * sum
		acc := 0.0
		pick := 0
		for i := 0; i < fitness.Len(); i++ {
			f := fitness.Get(i)
			if f > bestFit {
				bestIdx, bestFit = i, f
			}
			acc += f
			for acc >= threshold && pick < gpPopulation {
				picks[pick] = i
				pick++
				threshold += sum / float64(gpPopulation)
			}
		}
		elite := population.Get(bestIdx)

		// Next generation: clear + long insertion phase on the population.
		parents := make([]int, population.Len())
		for i := 0; i < population.Len(); i++ {
			parents[i] = population.Get(i)
		}
		population.Clear()
		population.Add(elite)
		for i := 1; i < gpPopulation; i++ {
			p1 := chromos[parents[picks[i]]]
			p2 := chromos[parents[picks[(i+7)%gpPopulation]]]
			child := make(gpChromosome, gpGenome)
			cut := 1 + r.intn(gpGenome-1)
			copy(child, p1[:cut])
			copy(child[cut:], p2[cut:])
			if r.intn(20) == 0 {
				child[r.intn(gpGenome)] = uint8(gpConstBase + r.intn(200))
			}
			chromos = append(chromos, child)
			population.Add(len(chromos) - 1)
		}
		stats.Put(gen, bestFit+aggregate*1e-12)
	}

	// Bookkeeping containers below every threshold.
	bestHistory := dstruct.NewListLabeled[float64](s, "best fitness history")
	for gen := 0; gen < 5; gen++ {
		bestHistory.Add(float64(gen))
	}
	opWeights := dstruct.NewArrayLabeled[float64](s, 4, "operator weights")
	for i := 0; i < 4; i++ {
		opWeights.Set(i, 0.25)
	}
	_ = opWeights.Get(0)

	// 30 per-elite gene lists: small bookkeeping containers (§V counts 37
	// instances in this program; most never cross a threshold).
	for e := 0; e < gpEliteLists; e++ {
		genes := dstruct.NewListLabeled[int](s, "elite genes")
		src := chromos[r.intn(len(chromos))]
		for _, g := range src[:8] {
			genes.Add(int(g))
		}
		for i := 0; i < genes.Len(); i++ {
			_ = genes.Get(i)
		}
	}
}

// gpRun is the plain engine; workers>1 parallelizes fitness evaluation and
// the selection scans — the recommended actions applied (and the places the
// hand-parallelized original parallelized too, §V).
func gpRun(popSize, gens, seriesLen, workers int) uint64 {
	r := newRNG(0x69D0)
	xs := make([]float64, seriesLen)
	for i := range xs {
		xs[i] = -2 + 4*float64(i)/float64(seriesLen)
	}
	target := gpTarget(xs)
	terminals := make([]float64, gpTerminals)
	for i := range terminals {
		terminals[i] = -10 + 20*r.float64n()
	}

	pop := make([]gpChromosome, popSize)
	for i := range pop {
		pop[i] = gpRandomChromosome(r, gpTerminals)
	}
	fit := make([]float64, popSize)

	var check uint64
	for gen := 0; gen < gens; gen++ {
		if workers <= 1 {
			for i, c := range pop {
				fit[i] = gpFitness(c, xs, target, terminals)
			}
		} else {
			par.ForChunked(popSize, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					fit[i] = gpFitness(pop[i], xs, target, terminals)
				}
			})
		}
		var sum float64
		var bestIdx int
		if workers <= 1 {
			for i, f := range fit {
				sum += f
				if f > fit[bestIdx] {
					bestIdx = i
				}
			}
		} else {
			sum = par.SumFloat64(fit, workers)
			bestIdx = par.MaxIndex(fit, workers, func(a, b float64) bool { return a < b })
		}
		check = check*31 + uint64(fit[bestIdx]*1e6) + uint64(sum)

		next := make([]gpChromosome, 0, popSize)
		next = append(next, pop[bestIdx])
		acc, threshold := 0.0, sum/float64(popSize)/2
		picks := make([]int, 0, popSize)
		for i := 0; i < popSize && len(picks) < popSize; i++ {
			acc += fit[i]
			for acc >= threshold && len(picks) < popSize {
				picks = append(picks, i)
				threshold += sum / float64(popSize)
			}
		}
		for len(picks) < popSize {
			picks = append(picks, bestIdx)
		}
		for i := 1; i < popSize; i++ {
			p1 := pop[picks[i]]
			p2 := pop[picks[(i+7)%popSize]]
			child := make(gpChromosome, gpGenome)
			cut := 1 + r.intn(gpGenome-1)
			copy(child, p1[:cut])
			copy(child[cut:], p2[cut:])
			if r.intn(20) == 0 {
				child[r.intn(gpGenome)] = uint8(gpConstBase + r.intn(200))
			}
			next = append(next, child)
		}
		pop = next
	}
	return check
}

// gpTwinSink keeps the twin's results observable so the compiler cannot
// elide any of the mirrored work.
var gpTwinSink float64

// gpTwin mirrors gpInstrumented operation for operation on raw slices and
// maps — same RNG stream, same chromosome arena with index indirection,
// same roulette arithmetic, same per-generation stats and bookkeeping — so
// the floor/twin delta isolates the instrumentation layer (the PlainTwin
// contract, DESIGN.md §9). gpRun stays the engine for Plain/Parallel, where
// a leaner idiomatic implementation is the point.
func gpTwin() {
	r := newRNG(0x69D0)

	inputs := make([]float64, 0)
	xs := make([]float64, gpSeriesLen)
	for i := range xs {
		xs[i] = -2 + 4*float64(i)/float64(gpSeriesLen)
		inputs = append(inputs, xs[i])
	}
	target := gpTarget(xs)

	terminalSet := make([]float64, gpTerminals)
	rawTerminals := make([]float64, gpTerminals)
	for i := 0; i < gpTerminals; i++ {
		v := -10 + 20*r.float64n()
		rawTerminals[i] = v
		terminalSet[i] = v
	}

	functions := make([]string, 0)
	for _, f := range []string{"+", "-", "*", "/"} {
		functions = append(functions, f)
	}

	params := make(map[string]float64)
	params["crossover"] = 0.85
	params["mutation"] = 0.05
	stats := make(map[int]float64)

	population := make([]int, 0)
	fitness := make([]float64, gpPopulation)

	chromos := make([]gpChromosome, 0, gpPopulation*2)
	newChromo := func() int {
		chromos = append(chromos, gpRandomChromosome(r, gpTerminals))
		return len(chromos) - 1
	}

	for i := 0; i < gpPopulation; i++ {
		population = append(population, newChromo())
	}

	for gen := 0; gen < gpGenerations; gen++ {
		aggregate := 0.0
		for i := 0; i < len(terminalSet); i++ {
			aggregate += terminalSet[i]
		}

		for i := 0; i < len(population); i++ {
			ci := population[i]
			fitness[i] = gpFitness(chromos[ci], xs, target, rawTerminals)
		}

		sum := 0.0
		for i := 0; i < len(fitness); i++ {
			sum += fitness[i]
		}
		bestIdx, bestFit := 0, -1.0
		picks := make([]int, gpPopulation)
		threshold := r.float64n() * sum
		acc := 0.0
		pick := 0
		for i := 0; i < len(fitness); i++ {
			f := fitness[i]
			if f > bestFit {
				bestIdx, bestFit = i, f
			}
			acc += f
			for acc >= threshold && pick < gpPopulation {
				picks[pick] = i
				pick++
				threshold += sum / float64(gpPopulation)
			}
		}
		elite := population[bestIdx]

		parents := make([]int, len(population))
		for i := 0; i < len(population); i++ {
			parents[i] = population[i]
		}
		population = population[:0]
		population = append(population, elite)
		for i := 1; i < gpPopulation; i++ {
			p1 := chromos[parents[picks[i]]]
			p2 := chromos[parents[picks[(i+7)%gpPopulation]]]
			child := make(gpChromosome, gpGenome)
			cut := 1 + r.intn(gpGenome-1)
			copy(child, p1[:cut])
			copy(child[cut:], p2[cut:])
			if r.intn(20) == 0 {
				child[r.intn(gpGenome)] = uint8(gpConstBase + r.intn(200))
			}
			chromos = append(chromos, child)
			population = append(population, len(chromos)-1)
		}
		stats[gen] = bestFit + aggregate*1e-12
	}

	bestHistory := make([]float64, 0)
	for gen := 0; gen < 5; gen++ {
		bestHistory = append(bestHistory, float64(gen))
	}
	opWeights := make([]float64, 4)
	for i := 0; i < 4; i++ {
		opWeights[i] = 0.25
	}
	sink := opWeights[0]

	for e := 0; e < gpEliteLists; e++ {
		genes := make([]int, 0)
		src := chromos[r.intn(len(chromos))]
		for _, g := range src[:8] {
			genes = append(genes, int(g))
		}
		for i := 0; i < len(genes); i++ {
			sink += float64(genes[i])
		}
	}

	gpTwinSink = sink + stats[gpGenerations-1] +
		float64(len(inputs)+len(functions)+len(params)+len(bestHistory))
}

func gpPlain() uint64 { return gpRun(gpPlainPop, gpPlainGens, gpPlainSeriesLen, 1) }

func gpParallel(workers int) uint64 {
	return gpRun(gpPlainPop, gpPlainGens, gpPlainSeriesLen, workers)
}

// gpRegions: fitness evaluation and selection scans are parallelizable (the
// dominant cost); breeding and bookkeeping are sequential. The paper
// reports a 3.89 % sequential fraction.
func gpRegions() (seq, parT time.Duration) {
	r := newRNG(0x69D0)
	xs := make([]float64, gpPlainSeriesLen)
	for i := range xs {
		xs[i] = -2 + 4*float64(i)/float64(gpPlainSeriesLen)
	}
	target := gpTarget(xs)
	terminals := make([]float64, gpTerminals)
	for i := range terminals {
		terminals[i] = -10 + 20*r.float64n()
	}
	pop := make([]gpChromosome, gpPlainPop)
	for i := range pop {
		pop[i] = gpRandomChromosome(r, gpTerminals)
	}
	fit := make([]float64, gpPlainPop)
	for gen := 0; gen < 10; gen++ {
		parT += timeIt(func() {
			for i, c := range pop {
				fit[i] = gpFitness(c, xs, target, terminals)
			}
		})
		seq += timeIt(func() {
			next := make([]gpChromosome, 0, len(pop))
			for i := range pop {
				child := make(gpChromosome, gpGenome)
				copy(child, pop[i])
				if r.intn(20) == 0 {
					child[r.intn(gpGenome)] = uint8(gpConstBase + r.intn(200))
				}
				next = append(next, child)
			}
			pop = next
		})
	}
	return seq, parT
}

// Probe workloads. The terminal-set aggregation (§V: "The length of the
// data structure in this case was too short for parallelization to yield a
// speedup") and the selection-array regions are deliberately small; the
// population-level regions are sized like the plain run.

func gpTerminalProbe(workers int) {
	data := make([]float64, gpTerminals)
	for i := range data {
		data[i] = float64(i)
	}
	for rep := 0; rep < 500; rep++ {
		if workers <= 1 {
			s := 0.0
			for _, v := range data {
				s += v
			}
			_ = s
		} else {
			par.SumFloat64(data, workers)
		}
	}
}

func gpFitnessProbe(workers int) {
	gpRun(gpPlainPop, 6, gpPlainSeriesLen, workers)
}

func gpRebuildProbe(workers int) {
	gpRun(gpPlainPop, 6, gpPlainSeriesLen, workers)
}

func gpSelectionProbe(workers int) {
	data := make([]float64, gpPopulation)
	for i := range data {
		data[i] = float64(i)
	}
	for rep := 0; rep < 2000; rep++ {
		if workers <= 1 {
			s := 0.0
			for _, v := range data {
				s += v
			}
			_ = s
		} else {
			par.SumFloat64(data, workers)
		}
	}
}

func gpSelectionFillProbe(workers int) {
	data := make([]float64, gpPopulation)
	for rep := 0; rep < 2000; rep++ {
		par.FillFunc(data, workers, func(i int) float64 { return float64(i * rep) })
	}
}
