package apps

import (
	"time"

	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// Mandelbrot reproduces the evaluation's fractal renderer: it computes the
// escape iteration for every pixel of the 1,858 × 1,028 image the paper uses
// (scaled down for the instrumented run, where every pixel is an access
// event) and builds the final color image.
//
// Published findings (§V): use case one parallelizes the main render loop
// (2.90×), use cases two and three parallelize coordinate-array
// initialization (1.77×), use case four parallelizes building the final
// image (1.40×). Table IV: 7 data structures, 4 use cases, 4 true
// positives, reduction 42.86 %, total speedup 3.00.

const (
	// Paper resolution, used by Plain/Parallel where pixels are cheap.
	mandelWidth  = 1858
	mandelHeight = 1028
	// Instrumented resolution: every pixel raises events through the
	// collector, so the profiled run uses a smaller frame, exactly like
	// running the instrumented copy on a reduced input.
	mandelInstWidth  = 320
	mandelInstHeight = 180
	mandelMaxIter    = 96
	mandelXMin       = -2.2
	mandelXMax       = 1.0
	mandelYMin       = -1.2
	mandelYMax       = 1.2
)

// mandelEscape is the per-pixel kernel.
func mandelEscape(cx, cy float64) int {
	var zx, zy float64
	for i := 0; i < mandelMaxIter; i++ {
		zx2, zy2 := zx*zx, zy*zy
		if zx2+zy2 > 4 {
			return i
		}
		zx, zy = zx2-zy2+cx, 2*zx*zy+cy
	}
	return mandelMaxIter
}

// mandelColor maps an iteration count to a packed RGB value via the palette.
func mandelColor(palette []uint64, iter int) uint64 {
	return palette[iter%len(palette)]
}

func mandelPalette() []uint64 {
	p := make([]uint64, 64) // below the 100-event threshold on purpose
	for i := range p {
		p[i] = mix64(uint64(i)) & 0xffffff
	}
	return p
}

// Mandelbrot returns the app descriptor.
func Mandelbrot() *App {
	app := &App{
		Name:               "Mandelbrot",
		Domain:             "Solver",
		PaperLOC:           150,
		PaperRuntime:       0.11,
		PaperSlowdown:      10.91,
		PaperReduction:     0.4286,
		PaperSpeedup:       3.00,
		WantDataStructures: 7,
		WantUseCases:       4,
		WantTruePositives:  4,
		Instrumented:       mandelInstrumented,
		PlainTwin:          mandelTwin,
		Plain:              mandelPlain,
		Parallel:           mandelParallel,
		Regions:            mandelRegions,
	}
	app.Probes = []Probe{
		{
			Name: "render loop", UseCase: "LI",
			Seq: func() { mandelRenderProbe(1) },
			Par: func(w int) { mandelRenderProbe(w) },
		},
		{
			Name: "x-coordinate traversal", UseCase: "FLR",
			Seq: func() { mandelCoordProbe(1) },
			Par: func(w int) { mandelCoordProbe(w) },
		},
		{
			Name: "y-coordinate initialization", UseCase: "LI",
			Seq: func() { mandelCoordProbe(1) },
			Par: func(w int) { mandelCoordProbe(w) },
		},
		{
			Name: "final image construction", UseCase: "LI",
			Seq: func() { mandelColorProbe(1) },
			Par: func(w int) { mandelColorProbe(w) },
		},
	}
	return app
}

// mandelRenderProbe is the main render loop region (§V: 490 ms → 170 ms).
func mandelRenderProbe(workers int) {
	w, h := mandelWidth, mandelHeight/2
	image := make([]int, w*h)
	par.ForChunked(h, workers, func(lo, hi int) {
		for py := lo; py < hi; py++ {
			cy := mandelYMin + (mandelYMax-mandelYMin)*float64(py)/float64(h)
			for px := 0; px < w; px++ {
				cx := mandelXMin + (mandelXMax-mandelXMin)*float64(px)/float64(w)
				image[py*w+px] = mandelEscape(cx, cy)
			}
		}
	})
}

// mandelCoordProbe is the coordinate-array region (§V: 60 ms → 34 ms) —
// sized up so the arithmetic is measurable on its own.
func mandelCoordProbe(workers int) {
	xs := make([]float64, 1<<22)
	par.FillFunc(xs, workers, func(px int) float64 {
		v := mandelXMin + (mandelXMax-mandelXMin)*float64(px)/float64(len(xs))
		return v * v
	})
}

// mandelColorProbe is the final-image region (§V: speedup 1.40).
func mandelColorProbe(workers int) {
	palette := mandelPalette()
	image := make([]int, mandelWidth*mandelHeight)
	for i := range image {
		image[i] = i % (mandelMaxIter + 1)
	}
	colors := make([]uint64, len(image))
	par.ForChunked(len(image), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := mandelColor(palette, image[i])
			// Per-pixel packing work so the region is compute-bound.
			c = mix64(c)
			colors[i] = c
		}
	})
}

// mandelInstrumented renders through instrumented containers. Seven data
// structures: xs, ys coordinate arrays, the iteration image, the color
// list, the palette array, a settings list and a histogram dictionary.
func mandelInstrumented(s *trace.Session) {
	w, h := mandelInstWidth, mandelInstHeight

	settings := dstruct.NewListLabeled[float64](s, "view settings")
	settings.Add(mandelXMin)
	settings.Add(mandelXMax)
	settings.Add(mandelYMin)
	settings.Add(mandelYMax)

	paletteSrc := mandelPalette()
	palette := dstruct.NewArrayLabeled[uint64](s, len(paletteSrc), "palette")
	for i, c := range paletteSrc {
		palette.Set(i, c)
	}
	_ = palette.Get(0) // palette is consulted via raw lookup below; keep one read

	// Use cases two and three: coordinate-array initialization loops.
	xs := dstruct.NewArrayLabeled[float64](s, w, "x coordinates")
	for px := 0; px < w; px++ {
		xs.Set(px, mandelXMin+(mandelXMax-mandelXMin)*float64(px)/float64(w))
	}
	ys := dstruct.NewArrayLabeled[float64](s, h, "y coordinates")
	for py := 0; py < h; py++ {
		ys.Set(py, mandelYMin+(mandelYMax-mandelYMin)*float64(py)/float64(h))
	}

	// Use case one: the main render loop writing the iteration image.
	image := dstruct.NewArrayLabeled[int](s, w*h, "iteration image")
	histogram := dstruct.NewDictionary[int, int](s)
	for py := 0; py < h; py++ {
		cy := ys.Get(py)
		interior := 0
		for px := 0; px < w; px++ {
			iter := mandelEscape(xs.Get(px), cy)
			image.Set(py*w+px, iter)
			if iter == mandelMaxIter {
				interior++
			}
		}
		histogram.Put(py, interior)
	}

	rowStats := dstruct.NewListLabeled[int](s, "row statistics")
	for py := 0; py < h; py += h / 8 {
		rowStats.Add(image.Get(py * w))
	}

	// Use case four: building the final color image (long insertions).
	colors := dstruct.NewListLabeled[uint64](s, "final image")
	for i := 0; i < w*h; i++ {
		colors.Add(mandelColor(paletteSrc, image.Get(i)))
	}
}

// mandelPlain is the original sequential program at paper resolution.
func mandelPlain() uint64 {
	return mandelRender(1)
}

// mandelTwin is the instrumented workload on raw data: same frame size,
// no proxy layer — the slowdown baseline.
func mandelTwin() {
	w, h := mandelInstWidth, mandelInstHeight
	palette := mandelPalette()
	xs := make([]float64, w)
	for px := 0; px < w; px++ {
		xs[px] = mandelXMin + (mandelXMax-mandelXMin)*float64(px)/float64(w)
	}
	ys := make([]float64, h)
	for py := 0; py < h; py++ {
		ys[py] = mandelYMin + (mandelYMax-mandelYMin)*float64(py)/float64(h)
	}
	image := make([]int, w*h)
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			image[py*w+px] = mandelEscape(xs[px], ys[py])
		}
	}
	colors := make([]uint64, 0, w*h)
	for i := 0; i < w*h; i++ {
		colors = append(colors, mandelColor(palette, image[i]))
	}
	_ = colors
}

// mandelParallel applies the recommended actions: parallel coordinate
// initialization, parallel row rendering, parallel final-image construction.
func mandelParallel(workers int) uint64 {
	return mandelRender(workers)
}

func mandelRender(workers int) uint64 {
	w, h := mandelWidth, mandelHeight
	palette := mandelPalette()

	xs := make([]float64, w)
	ys := make([]float64, h)
	par.FillFunc(xs, workers, func(px int) float64 {
		return mandelXMin + (mandelXMax-mandelXMin)*float64(px)/float64(w)
	})
	par.FillFunc(ys, workers, func(py int) float64 {
		return mandelYMin + (mandelYMax-mandelYMin)*float64(py)/float64(h)
	})

	image := make([]int, w*h)
	par.ForChunked(h, workers, func(lo, hi int) {
		for py := lo; py < hi; py++ {
			cy := ys[py]
			row := image[py*w : (py+1)*w]
			for px := 0; px < w; px++ {
				row[px] = mandelEscape(xs[px], cy)
			}
		}
	})

	colors := make([]uint64, w*h)
	par.ForChunked(w*h, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			colors[i] = mandelColor(palette, image[i])
		}
	})

	var sum uint64
	for _, c := range colors {
		sum = sum*31 + c
	}
	return sum
}

// mandelRegions: the image computation and assembly are parallelizable; the
// palette/coordinate setup and checksum are the sequential remainder.
func mandelRegions() (seq, par_ time.Duration) {
	w, h := mandelWidth, mandelHeight
	var palette []uint64
	var xs, ys []float64
	seq += timeIt(func() {
		palette = mandelPalette()
		xs = make([]float64, w)
		ys = make([]float64, h)
	})
	image := make([]int, w*h)
	par_ += timeIt(func() {
		for px := 0; px < w; px++ {
			xs[px] = mandelXMin + (mandelXMax-mandelXMin)*float64(px)/float64(w)
		}
		for py := 0; py < h; py++ {
			ys[py] = mandelYMin + (mandelYMax-mandelYMin)*float64(py)/float64(h)
		}
		for py := 0; py < h; py++ {
			for px := 0; px < w; px++ {
				image[py*w+px] = mandelEscape(xs[px], ys[py])
			}
		}
	})
	var sum uint64
	seq += timeIt(func() {
		for _, it := range image {
			sum = sum*31 + mandelColor(palette, it)
		}
	})
	_ = sum
	return seq, par_
}
