// Package apps contains Go mini-ports of the seven programs the paper's
// evaluation (Table IV) runs DSspy on: Algorithmia, AstroGrep,
// ContentFinder, CPU Benchmarks (Linpack + Whetstone), GPdotNET, Mandelbrot
// and WordWheelSolver.
//
// Every app exists in three forms sharing one code path shape:
//
//   - Instrumented: the workload against the dstruct proxy containers,
//     producing the runtime profiles DSspy analyzes;
//   - Plain: the same workload on uninstrumented data (the original program,
//     the denominator of the slowdown measurement);
//   - Parallel: the workload after applying the recommended actions DSspy
//     produced, used for the speedup column.
//
// Plain and Parallel return a checksum so tests can assert that following a
// recommendation preserves program semantics.
package apps

import (
	"time"

	"dsspy/internal/trace"
)

// App describes one evaluation program.
type App struct {
	Name   string
	Domain string
	// PaperLOC and PaperSlowdown/PaperSpeedup are Table IV's published
	// reference values, used when printing the paper-vs-measured tables.
	PaperLOC       int
	PaperRuntime   float64 // seconds
	PaperSlowdown  float64
	PaperReduction float64 // search-space reduction, 0..1
	PaperSpeedup   float64

	// WantDataStructures, WantUseCases, WantTruePositives are Table IV's
	// "Data Structures" and "Use Cases: X of Y" columns.
	WantDataStructures int
	WantUseCases       int
	WantTruePositives  int

	// Instrumented runs the workload against dstruct containers.
	Instrumented func(s *trace.Session)
	// PlainTwin runs the same workload at the same input size on raw data
	// — the original program the slowdown column divides by. (Plain and
	// Parallel use the paper's full input sizes, which can differ from the
	// instrumented run's.)
	PlainTwin func()
	// Plain runs the original sequential workload.
	Plain func() uint64
	// Parallel runs the workload with the recommended actions applied,
	// using `workers` goroutines in the parallelized regions.
	Parallel func(workers int) uint64

	// Regions measures the wall time of the inherently sequential part and
	// the parallelizable part of the plain workload (Table VI); nil when
	// the app is not part of that comparison.
	Regions func() (seq, par time.Duration)

	// Probes isolate each detected use case's code region so the harness
	// can follow the recommended action per finding and classify it as a
	// true or false positive — the paper's precision measurement.
	Probes []Probe
}

// Probe is one use-case region: the sequential original and the
// recommendation-applied parallel version of just that region.
type Probe struct {
	Name    string
	UseCase string // the use-case short name (LI, FLR, ...)
	Seq     func()
	Par     func(workers int)
}

// Measure runs the probe both ways and returns the region speedup
// (sequential time / parallel time), taking the best of reps runs each.
func (p Probe) Measure(workers, reps int) float64 {
	if reps < 1 {
		reps = 1
	}
	best := func(fn func()) time.Duration {
		b := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			if d := timeIt(fn); d < b {
				b = d
			}
		}
		return b
	}
	seq := best(p.Seq)
	parD := best(func() { p.Par(workers) })
	if parD <= 0 {
		return 1
	}
	return float64(seq) / float64(parD)
}

// Apps returns the seven evaluation programs in Table IV order.
func Apps() []*App {
	return []*App{
		Algorithmia(),
		AstroGrep(),
		ContentFinder(),
		CPUBenchmarks(),
		GPdotNET(),
		Mandelbrot(),
		WordWheelSolver(),
	}
}

// All returns every runnable program: the seven Table IV apps plus the
// concurrency-aware subjects that postdate the paper's evaluation. Table IV
// reproduction code must keep using Apps(); workload pickers use All().
func All() []*App {
	return append(Apps(), Contend())
}

// ByName returns the app with the given name, or nil.
func ByName(name string) *App {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// timeIt measures fn's wall time.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// mix64 is a small deterministic hash used for checksums and pseudo-random
// data so runs are reproducible without math/rand.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rng is a tiny deterministic generator (splitmix64).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// float64n returns a float in [0,1).
func (r *rng) float64n() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// intn returns an int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
