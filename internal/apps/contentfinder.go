package apps

import (
	"fmt"
	"strings"

	"dsspy/internal/dstruct"
	"dsspy/internal/par"
	"dsspy/internal/trace"
)

// ContentFinder reproduces the evaluation's second file-search tool, a
// smaller keyword finder over document contents. Table IV: 11 data
// structures, 2 use cases, 2 true positives, reduction 81.82 %, slowdown
// 2.89, speedup 1.56. Both findings profit here: the document scan
// parallelizes across chunks, and the per-match scoring is CPU-bound enough
// to parallelize too.

var finderKeywords = []string{
	"alpha", "delta", "sigma", "omega", "kappa", "theta",
	"lambda", "gamma", "zeta", "epsilon", "rho", "tau",
}

const (
	finderDocs          = 6
	finderLinesPerDoc   = 70
	finderPlainDocLines = 120000
)

func synthDoc(r *rng, lines int) []string {
	words := append([]string{}, finderKeywords...)
	words = append(words, "plain", "filler", "noise", "body", "text",
		"content", "section", "header", "footer", "title")
	out := make([]string, lines)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		n := 5 + r.intn(5)
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[r.intn(len(words))])
		}
		out[i] = sb.String()
	}
	return out
}

// ContentFinder returns the app descriptor.
func ContentFinder() *App {
	app := &App{
		Name:               "Contentfinder",
		Domain:             "File Search",
		PaperLOC:           290,
		PaperRuntime:       1.80,
		PaperSlowdown:      2.89,
		PaperReduction:     0.8182,
		PaperSpeedup:       1.56,
		WantDataStructures: 11,
		WantUseCases:       2,
		WantTruePositives:  2,
		Instrumented:       finderInstrumented,
		PlainTwin:          finderTwin,
		Plain:              finderPlain,
		Parallel:           finderParallel,
	}
	app.Probes = []Probe{
		{
			Name: "document scan", UseCase: "FLR",
			Seq: func() { finderScanProbe(1) },
			Par: func(w int) { finderScanProbe(w) },
		},
		{
			Name: "match scoring", UseCase: "LI",
			Seq: func() { finderScoreProbe(1) },
			Par: func(w int) { finderScoreProbe(w) },
		},
	}
	return app
}

// finderInstrumented: 11 data structures — 6 per-document lists, the merged
// content list, the match list, a keyword list, a score dictionary and a
// folder list.
func finderInstrumented(s *trace.Session) {
	r := newRNG(0xF1D)

	folders := dstruct.NewListLabeled[string](s, "folders")
	folders.Add("docs/")
	folders.Add("archive/")

	keywords := dstruct.NewListLabeled[string](s, "keywords")
	for _, k := range finderKeywords {
		keywords.Add(k)
	}

	content := dstruct.NewListLabeled[string](s, "merged content")
	for d := 0; d < finderDocs; d++ {
		doc := dstruct.NewListLabeled[string](s, fmt.Sprintf("doc%d", d))
		for _, line := range synthDoc(r, finderLinesPerDoc) {
			doc.Add(line)
		}
		for i := 0; i < doc.Len(); i++ {
			content.Add(doc.Get(i))
		}
	}

	matches := dstruct.NewListLabeled[string](s, "matches")
	scores := dstruct.NewDictionary[string, int](s)

	for k := 0; k < keywords.Len(); k++ {
		kw := keywords.Get(k)
		count := 0
		for i := 0; i < content.Len(); i++ {
			line := content.Get(i)
			if strings.Contains(line, kw) {
				matches.Add(kw + "@" + line)
				count++
			}
		}
		scores.Put(kw, count)
	}

	history := dstruct.NewListLabeled[string](s, "search history")
	history.Add("alpha")
	history.Add("omega")
	_ = history.Get(1)
}

func finderScore(line string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(line); i++ {
		h = (h ^ uint64(line[i])) * 1099511628211
	}
	// A little extra per-match work so scoring is worth parallelizing.
	for i := 0; i < 64; i++ {
		h = mix64(h)
	}
	return h
}

func finderRun(lines []string, workers int) uint64 {
	var sum uint64
	for _, kw := range finderKeywords {
		// Scan phase.
		var matched []string
		if workers <= 1 {
			for _, line := range lines {
				if strings.Contains(line, kw) {
					matched = append(matched, line)
				}
			}
		} else {
			parts := make([][]string, workers)
			par.ChunkIndexed(len(lines), workers, func(chunk, lo, hi int) {
				var local []string
				for i := lo; i < hi; i++ {
					if strings.Contains(lines[i], kw) {
						local = append(local, lines[i])
					}
				}
				parts[chunk] = local
			})
			for _, p := range parts {
				matched = append(matched, p...)
			}
		}
		// Scoring phase.
		if workers <= 1 {
			for _, line := range matched {
				sum += finderScore(line)
			}
		} else {
			partial := make([]uint64, workers)
			par.ChunkIndexed(len(matched), workers, func(chunk, lo, hi int) {
				var local uint64
				for i := lo; i < hi; i++ {
					local += finderScore(matched[i])
				}
				partial[chunk] = local
			})
			for _, pv := range partial {
				sum += pv
			}
		}
	}
	return sum
}

func finderPlainCorpus() []string {
	return synthDoc(newRNG(0xF1D), finderPlainDocLines)
}

// finderTwin mirrors the instrumented run (same corpus, scan + collect,
// no scoring) on raw slices.
func finderTwin() {
	r := newRNG(0xF1D)
	var content []string
	for d := 0; d < finderDocs; d++ {
		content = append(content, synthDoc(r, finderLinesPerDoc)...)
	}
	scores := map[string]int{}
	var matches []string
	for _, kw := range finderKeywords {
		count := 0
		for _, line := range content {
			if strings.Contains(line, kw) {
				matches = append(matches, kw+"@"+line)
				count++
			}
		}
		scores[kw] = count
	}
	_ = matches
}

func finderPlain() uint64 { return finderRun(finderPlainCorpus(), 1) }

func finderParallel(workers int) uint64 { return finderRun(finderPlainCorpus(), workers) }

var finderProbeLines []string

func finderProbeInit() {
	if finderProbeLines == nil {
		finderProbeLines = finderPlainCorpus()
	}
}

func finderScanProbe(workers int) {
	finderProbeInit()
	kw := finderKeywords[0]
	if workers <= 1 {
		n := 0
		for _, line := range finderProbeLines {
			if strings.Contains(line, kw) {
				n++
			}
		}
		_ = n
		return
	}
	par.Count(finderProbeLines, workers, func(line string) bool {
		return strings.Contains(line, kw)
	})
}

func finderScoreProbe(workers int) {
	finderProbeInit()
	if workers <= 1 {
		var sum uint64
		for _, line := range finderProbeLines {
			sum += finderScore(line)
		}
		_ = sum
		return
	}
	partial := make([]uint64, workers)
	par.ChunkIndexed(len(finderProbeLines), workers, func(chunk, lo, hi int) {
		var local uint64
		for i := lo; i < hi; i++ {
			local += finderScore(finderProbeLines[i])
		}
		partial[chunk] = local
	})
}
