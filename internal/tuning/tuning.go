// Package tuning implements the threshold-tuning step of §III.B: "We also
// used these 23 programs to tune the threshold values to yield the best
// detection quality." It evaluates a threshold assignment against the
// labeled use-case corpus (expected findings per program) and searches the
// threshold space by coordinate descent for the assignment with the best
// F1 score.
//
// Profiles and pattern summaries are computed once per program and cached;
// only the use-case detectors re-run per candidate, so a full sweep over
// thousands of candidates stays fast.
package tuning

import (
	"fmt"
	"sort"

	"dsspy/internal/corpus"
	"dsspy/internal/pattern"
	"dsspy/internal/profile"
	"dsspy/internal/trace"
	"dsspy/internal/usecase"
)

// Sample is one labeled program: its cached per-instance analysis inputs
// and the expected use-case counts.
type Sample struct {
	Program  string
	Expected map[usecase.Kind]int

	profiles  []*profile.Profile
	summaries []*pattern.Summary
}

// BuildSamples runs every use-case-study program once under instrumentation
// and caches the profiles and pattern summaries together with the
// descriptor's expected findings.
func BuildSamples() []Sample {
	cfg := pattern.DefaultConfig()
	var out []Sample
	for _, p := range corpus.UseCaseStudyPrograms() {
		rec := trace.NewMemRecorder()
		s := trace.NewSessionWith(trace.Options{Recorder: rec, CaptureSites: false})
		for _, b := range p.Mix.Behaviors(p.Name) {
			b(s)
		}
		sample := Sample{Program: p.Name, Expected: p.Mix.UseCases()}
		for _, pr := range profile.Build(s, rec.Events()) {
			sample.profiles = append(sample.profiles, pr)
			sample.summaries = append(sample.summaries, pattern.SummarizeThreads(pr, cfg))
		}
		out = append(out, sample)
	}
	return out
}

// detect returns the sample's per-kind parallel-use-case counts under th.
func (s *Sample) detect(th usecase.Thresholds) map[usecase.Kind]int {
	got := make(map[usecase.Kind]int)
	for i, pr := range s.profiles {
		for _, u := range usecase.DetectWithSummary(pr, s.summaries[i], th) {
			if u.Kind.Parallel() {
				got[u.Kind]++
			}
		}
	}
	return got
}

// Quality is a detection-quality measurement against the labels.
type Quality struct {
	TP, FP, FN int
}

// Precision returns TP / (TP + FP), 1 when nothing was detected.
func (q Quality) Precision() float64 {
	if q.TP+q.FP == 0 {
		return 1
	}
	return float64(q.TP) / float64(q.TP+q.FP)
}

// Recall returns TP / (TP + FN), 1 when nothing was expected.
func (q Quality) Recall() float64 {
	if q.TP+q.FN == 0 {
		return 1
	}
	return float64(q.TP) / float64(q.TP+q.FN)
}

// F1 is the harmonic mean of precision and recall.
func (q Quality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (q Quality) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d P=%.3f R=%.3f F1=%.3f",
		q.TP, q.FP, q.FN, q.Precision(), q.Recall(), q.F1())
}

// Evaluate measures detection quality of th over the samples: per program
// and kind, matched counts are true positives, excess detections false
// positives, missed expectations false negatives.
func Evaluate(samples []Sample, th usecase.Thresholds) Quality {
	var q Quality
	for i := range samples {
		got := samples[i].detect(th)
		for _, k := range usecase.ParallelKinds() {
			e, g := samples[i].Expected[k], got[k]
			m := e
			if g < m {
				m = g
			}
			q.TP += m
			q.FP += g - m
			q.FN += e - m
		}
	}
	return q
}

// Axis is one tunable threshold dimension with candidate values.
type Axis struct {
	Name string
	// Values are the candidates, ascending.
	Values []float64
	// Apply writes a candidate into the threshold struct.
	Apply func(*usecase.Thresholds, float64)
	// Read extracts the current value.
	Read func(usecase.Thresholds) float64
}

// DefaultAxes spans the paper's five stated thresholds around their
// published values.
func DefaultAxes() []Axis {
	return []Axis{
		{
			Name:   "LI.MinRunLen",
			Values: []float64{10, 25, 50, 100, 200, 400},
			Apply:  func(t *usecase.Thresholds, v float64) { t.LIMinRunLen = int(v); t.SAIMinRunLen = int(v) },
			Read:   func(t usecase.Thresholds) float64 { return float64(t.LIMinRunLen) },
		},
		{
			Name:   "LI.MinPhaseFraction",
			Values: []float64{0.05, 0.10, 0.20, 0.30, 0.50, 0.70},
			Apply:  func(t *usecase.Thresholds, v float64) { t.LIMinPhaseFraction = v; t.SAIMinPhaseFraction = v },
			Read:   func(t usecase.Thresholds) float64 { return t.LIMinPhaseFraction },
		},
		{
			Name:   "IQ.MinEndFraction",
			Values: []float64{0.30, 0.45, 0.60, 0.75, 0.90},
			Apply:  func(t *usecase.Thresholds, v float64) { t.IQMinEndFraction = v },
			Read:   func(t usecase.Thresholds) float64 { return t.IQMinEndFraction },
		},
		{
			Name:   "FS.MinSearchOps",
			Values: []float64{100, 250, 500, 1000, 2000},
			Apply:  func(t *usecase.Thresholds, v float64) { t.FSMinSearchOps = int(v) },
			Read:   func(t usecase.Thresholds) float64 { return float64(t.FSMinSearchOps) },
		},
		{
			Name:   "FLR.MinPatterns",
			Values: []float64{3, 5, 10, 20, 40},
			Apply:  func(t *usecase.Thresholds, v float64) { t.FLRMinPatterns = int(v) },
			Read:   func(t usecase.Thresholds) float64 { return float64(t.FLRMinPatterns) },
		},
		{
			Name:   "FLR.MinCoverage",
			Values: []float64{0.25, 0.50, 0.75, 0.90},
			Apply:  func(t *usecase.Thresholds, v float64) { t.FLRMinCoverage = v },
			Read:   func(t usecase.Thresholds) float64 { return t.FLRMinCoverage },
		},
	}
}

// SweepResult records one candidate evaluation along an axis.
type SweepResult struct {
	Axis    string
	Value   float64
	Quality Quality
}

// Tune performs coordinate descent from the start thresholds: each pass
// sweeps every axis, keeping the best value (ties keep the incumbent), and
// stops when a full pass makes no improvement or maxPasses is reached.
// It returns the tuned thresholds, their quality, and the full sweep trace.
func Tune(samples []Sample, start usecase.Thresholds, axes []Axis, maxPasses int) (usecase.Thresholds, Quality, []SweepResult) {
	if maxPasses < 1 {
		maxPasses = 2
	}
	cur := start
	curQ := Evaluate(samples, cur)
	var trace_ []SweepResult
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for _, ax := range axes {
			bestV := ax.Read(cur)
			bestQ := curQ
			for _, v := range ax.Values {
				cand := cur
				ax.Apply(&cand, v)
				q := Evaluate(samples, cand)
				trace_ = append(trace_, SweepResult{Axis: ax.Name, Value: v, Quality: q})
				if q.F1() > bestQ.F1() {
					bestV, bestQ = v, q
				}
			}
			if bestV != ax.Read(cur) {
				ax.Apply(&cur, bestV)
				curQ = bestQ
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur, curQ, trace_
}

// QualityCurve evaluates one axis across its values with the other
// thresholds fixed — the per-threshold sensitivity view.
func QualityCurve(samples []Sample, base usecase.Thresholds, ax Axis) []SweepResult {
	out := make([]SweepResult, 0, len(ax.Values))
	for _, v := range ax.Values {
		cand := base
		ax.Apply(&cand, v)
		out = append(out, SweepResult{Axis: ax.Name, Value: v, Quality: Evaluate(samples, cand)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}
