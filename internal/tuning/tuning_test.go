package tuning

import (
	"testing"

	"dsspy/internal/usecase"
)

func samplesOnce(t *testing.T) []Sample {
	t.Helper()
	s := BuildSamples()
	if len(s) != 24 {
		t.Fatalf("samples = %d, want 24 study programs", len(s))
	}
	return s
}

func TestDefaultThresholdsArePerfectOnCorpus(t *testing.T) {
	samples := samplesOnce(t)
	q := Evaluate(samples, usecase.Default())
	if q.F1() != 1.0 {
		t.Errorf("default thresholds: %v, want F1 = 1.0", q)
	}
	if q.TP != 66 {
		t.Errorf("TP = %d, want 66 (the study's use cases)", q.TP)
	}
}

func TestLooseThresholdsOverdetect(t *testing.T) {
	samples := samplesOnce(t)
	th := usecase.Default()
	th.LIMinRunLen = 10
	th.LIMinPhaseFraction = 0.05
	q := Evaluate(samples, th)
	if q.FP == 0 {
		t.Error("loosened LI thresholds produced no false positives")
	}
	if q.Precision() >= 1.0 {
		t.Errorf("precision = %v", q.Precision())
	}
	if q.Recall() < 1.0 {
		t.Errorf("loosening must not lose recall: %v", q)
	}
}

func TestTightThresholdsUnderdetect(t *testing.T) {
	samples := samplesOnce(t)
	th := usecase.Default()
	th.FLRMinPatterns = 40
	q := Evaluate(samples, th)
	if q.FN == 0 {
		t.Error("tightened FLR threshold missed nothing")
	}
	if q.Recall() >= 1.0 {
		t.Errorf("recall = %v", q.Recall())
	}
}

func TestTuneRecoversFromBadStart(t *testing.T) {
	samples := samplesOnce(t)
	start := usecase.Default()
	start.LIMinRunLen = 10 // over-detects
	start.SAIMinRunLen = 10
	start.FLRMinPatterns = 40 // under-detects
	startQ := Evaluate(samples, start)
	if startQ.F1() >= 1.0 {
		t.Fatalf("bad start unexpectedly perfect: %v", startQ)
	}
	tuned, q, trace := Tune(samples, start, DefaultAxes(), 3)
	if q.F1() != 1.0 {
		t.Errorf("tuning reached %v, want F1 = 1.0", q)
	}
	if len(trace) == 0 {
		t.Error("no sweep trace")
	}
	// The tuned values must sit in the region that keeps the corpus
	// perfectly separated (the paper's published values are one such
	// point).
	if tuned.LIMinRunLen < 25 || tuned.LIMinRunLen > 400 {
		t.Errorf("tuned LIMinRunLen = %d", tuned.LIMinRunLen)
	}
	if tuned.FLRMinPatterns > 20 {
		t.Errorf("tuned FLRMinPatterns = %d", tuned.FLRMinPatterns)
	}
}

func TestQualityMetricsEdgeCases(t *testing.T) {
	var q Quality
	if q.Precision() != 1 || q.Recall() != 1 {
		t.Error("empty quality should have perfect precision/recall")
	}
	q = Quality{FP: 3}
	if q.Precision() != 0 {
		t.Errorf("precision = %v", q.Precision())
	}
	q = Quality{FN: 3}
	if q.Recall() != 0 || q.F1() != 0 {
		t.Errorf("recall = %v f1 = %v", q.Recall(), q.F1())
	}
	if (Quality{TP: 1}).String() == "" {
		t.Error("empty String")
	}
}

func TestQualityCurveMonotonicEnds(t *testing.T) {
	samples := samplesOnce(t)
	axes := DefaultAxes()
	var liAxis Axis
	for _, ax := range axes {
		if ax.Name == "LI.MinRunLen" {
			liAxis = ax
		}
	}
	curve := QualityCurve(samples, usecase.Default(), liAxis)
	if len(curve) != len(liAxis.Values) {
		t.Fatalf("curve = %d points", len(curve))
	}
	// Very low run-length over-detects (precision < 1); very high
	// under-detects (recall < 1); the published value of 100 is perfect.
	if curve[0].Quality.Precision() >= 1 {
		t.Errorf("low end precision = %v", curve[0].Quality)
	}
	last := curve[len(curve)-1]
	if last.Quality.Recall() >= 1 {
		t.Errorf("high end recall = %v", last.Quality)
	}
	for _, pt := range curve {
		if pt.Value == 100 && pt.Quality.F1() != 1 {
			t.Errorf("published value not perfect: %v", pt.Quality)
		}
	}
}
