GO ?= go

.PHONY: check build vet test race bench bench-stream bench-obs bench-hotpath bench-columnar bench-contend bench-sample bench-floor inline-guard smoke-obs chaos fuzz-smoke clean

## check: everything CI runs — build, vet, full tests, race tests on the
## concurrent packages, the streaming/batch and hot-path differentials under
## the race detector, the hot-path acceptance gate, the live /metrics +
## /statusz smoke, and a short fuzz pass over the salvaging decoders. This is
## the single command to run before pushing.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/... ./internal/trace/... ./internal/core/... ./internal/par/... ./internal/sample/... ./cmd/dsspy/
	$(GO) test -race -run 'Streaming|HotPath|Columnar|Contend|Contention|Sample' .
	$(MAKE) bench-hotpath
	$(MAKE) bench-columnar
	$(MAKE) bench-contend
	$(MAKE) bench-sample
	$(MAKE) bench-floor
	$(MAKE) smoke-obs
	$(MAKE) chaos
	$(MAKE) fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrency-sensitive packages plus the root package's
## sharded-pipeline tests under the race detector.
race:
	$(GO) test -race ./internal/obs/... ./internal/trace/... ./internal/core/... ./cmd/dsspy/ .

## bench: the sharded-pipeline benchmark battery from EXPERIMENTS.md, plus
## the overload-policy producer-latency comparison.
bench:
	$(GO) test -run xxx -bench 'Collect1M|Analyze1M|Build1M|Pipeline1M|Overload' -benchmem -benchtime 5x -count 5 .

## bench-stream: the streaming-engine acceptance numbers — full-pipeline time
## and post-collection live heap, batch vs streamed, at 1M and 2M events (the
## streamed live-heap-MB metric must stay flat when the event count doubles).
bench-stream:
	$(GO) test -run xxx -bench 'Pipeline1MStreamed|Pipeline1MBatchHeap|Pipeline2MStreamed|Pipeline2MBatchHeap' -benchmem -benchtime 5x .

## bench-obs: the observability-plane overhead pair — producer-side Record
## cost with the plane off vs fully on (self-tracer, queue-depth sampling,
## timed recorder). Acceptance: obs-on ns/op within 5% of obs-off.
bench-obs:
	$(GO) test ./internal/trace/ -run xxx -bench 'RecordObs' -benchmem -benchtime 2s -count 5

## bench-hotpath: the hot-path overhaul's acceptance gates and benchmarks.
## Gates: sampled p50 per-event Record cost through Bind-batched delivery
## must be ≥3× lower than per-event Emit on the 8-producer sharded workload
## (DSSPY_HOTPATH_GATE=1 enables the wall-clock half), and the v3 columnar
## wire format must spend ≤1/3 the bytes/event of v2 on a corpus-like stream.
## Benchmarks: Emit-vs-Bind ns/event, the goroutine-id fast path, and the
## k-way merge vs the global sort at 1M events.
bench-hotpath:
	DSSPY_HOTPATH_GATE=1 $(GO) test ./internal/trace/ -run 'TestHotPathLatencyGate|TestV3BytesPerEventGate' -v -count 1
	$(GO) test ./internal/trace/ -run xxx -bench 'HotPath|GoidLookup|MergeKWay1M|MergeGlobalSort1M' -benchmem -benchtime 2x -count 1

## bench-columnar: the columnar engine's acceptance gates and benchmarks.
## Gates (DSSPY_COLUMNAR_GATE=1): streaming fold throughput over column
## batches must be ≥2× the []Event path on a phase-structured 2M-event
## workload, and a full v3-log columnar replay must allocate ≤1/3 the
## bytes/event of the inflating load-and-feed path. The zero-alloc decode
## assertion (TestReadColumnsZeroAlloc) runs unconditionally in `make test`.
## Benchmarks: columnar vs []Event replay and fold, and the batch-run k-way
## merge vs the event-slice merge at 1M events.
bench-columnar:
	DSSPY_COLUMNAR_GATE=1 $(GO) test . -run 'TestColumnarFoldThroughputGate|TestColumnarReplayAllocGate' -v -count 1
	$(GO) test . -run xxx -bench 'ColumnarReplay|EventReplay|ColumnarFold|EventFold' -benchmem -benchtime 2x -count 1
	$(GO) test ./internal/trace/ -run xxx -bench 'MergeColumns1M|MergeKWay1M|ReadColumns' -benchmem -benchtime 2x -count 1

## bench-contend: the concurrency-aware analysis acceptance gates. The
## contention reducer must cost <5% of the end-to-end single-threaded
## pipeline and fold with zero allocations on single-thread instances, and
## the applied MPSC-ring recommendation must yield >=1.5x on the Contend
## app's queue hand-off region (it measures ~100x+: O(1) ring slots vs O(n)
## slice-FIFO front removals).
bench-contend:
	$(GO) test . -run 'TestContentionOverheadEndToEnd|TestContendQueueProbeSpeedup' -v -count 1
	$(GO) test ./internal/profile/ -run 'TestContentionSingleThreadZeroAlloc|TestContentionOverheadBudget' -v -count 1

## bench-sample: the adaptive-sampling acceptance gates. First the
## differential suite: on all 44 corpus workloads, sampled detections must
## either match full fidelity exactly or carry a positive error bound, with
## the gate's conservation identity (observed = folded + sampled out)
## holding per instance. Then the slowdown gate (DSSPY_SAMPLE_GATE=1): on
## the Table IV apps, the steady-state 1:64 sampled run must cost <1.5× the
## no-trace floor (drop-everything gate) geo-mean — i.e. sampling removes
## the removable tracing overhead; the dstruct proxy layer below the floor
## is not the sampler's to reclaim. Twin-relative ratios for the
## EXPERIMENTS.md table are logged alongside.
bench-sample:
	$(GO) test . -run 'TestSampleDifferentialCorpus' -count 1
	DSSPY_SAMPLE_GATE=1 $(GO) test . -run 'TestSampleSlowdownGate' -v -count 1

## bench-floor: the inlined-fast-path acceptance gates. First the inline
## guard: Handle.Drop and agg.fold must stay within the compiler's inlining
## budget — the floor bar depends on the credit test inlining into the
## container bodies. Then the floor gate (DSSPY_FLOOR_GATE=1): on the
## Table IV apps, the no-trace floor (drop-everything gate) must cost ≤1.4×
## the operation-faithful plain twins geo-mean, and the full-fidelity
## per-event Record p50 must stay under its absolute ceiling.
bench-floor:
	$(MAKE) inline-guard
	DSSPY_FLOOR_GATE=1 $(GO) test . -run 'TestFloorGate' -v -count 1

## inline-guard: asserts the two functions the sampled-out fast path rides —
## the handle's credit test and the aggregate fold — still inline, by reading
## the compiler's own -m escape/inline report. A refactor that pushes either
## past the budget turns every backed-off container access into a function
## call and silently re-raises the floor.
inline-guard:
	@out=$$($(GO) build -gcflags='-m' ./internal/trace/ 2>&1); \
	for fn in '(\*Handle).Drop' '(\*agg).fold'; do \
		if ! echo "$$out" | grep -q "can inline $$fn"; then \
			echo "inline-guard: $$fn no longer inlines (compiler -m report)"; exit 1; \
		fi; \
	done; echo "inline-guard: Handle.Drop and agg.fold inline OK"

## smoke-obs: boots the CLI with the live observability surface (the -listen
## side keeps serving while it waits for a producer) and checks that /healthz,
## /metrics and /statusz answer with the expected content.
smoke-obs:
	$(GO) build -o /tmp/dsspy-smoke ./cmd/dsspy
	@/tmp/dsspy-smoke -listen 127.0.0.1:17977 -conns 1 -http 127.0.0.1:16977 -quiet >/dev/null 2>&1 & \
	pid=$$!; sleep 1; ok=0; \
	{ curl -sf http://127.0.0.1:16977/healthz | grep -q ok && \
	  curl -sf http://127.0.0.1:16977/metrics | grep -q dsspy_trace_spans_total && \
	  curl -sf http://127.0.0.1:16977/metrics | grep -q dsspy_server_conns_active && \
	  curl -sf "http://127.0.0.1:16977/statusz?frag=1" | grep -q "Producer streams"; } || ok=1; \
	kill $$pid 2>/dev/null; rm -f /tmp/dsspy-smoke; \
	if [ $$ok -ne 0 ]; then echo "smoke-obs: endpoint check FAILED"; exit 1; fi; \
	echo "smoke-obs: /healthz /metrics /statusz OK"

## chaos: the fault-injection matrix under the race detector — flaky accepts,
## mid-frame link cuts, corrupted frames, stalled (slowloris) readers with
## quarantine, spill-disk failure, and daemon restart/resume. Every cell
## asserts the per-tenant conservation identity (received = delivered +
## sampled-out + dropped) and the producer-side delivery invariant.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/core/ ./internal/trace/ ./internal/faultnet/ -count 1

## fuzz-smoke: 10 seconds of fuzzing per decoder entry point (go's fuzzer
## accepts one -fuzz pattern per run, hence the sequence). Catches wire-format
## regressions that crash or mis-account the salvaging loaders.
fuzz-smoke:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzStreamReader$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzRecoverSessionLog$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzChecksummedFrameReader$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzColumnarDecoder$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzColumnarFoldDifferential$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzHelloHandshake$$' -fuzztime 10s
	$(GO) test ./internal/sample/ -run '^$$' -fuzz '^FuzzSampleController$$' -fuzztime 10s

clean:
	$(GO) clean ./...
