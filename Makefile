GO ?= go

.PHONY: check build vet test race bench bench-stream fuzz-smoke clean

## check: everything CI runs — build, vet, full tests, race tests on the
## concurrent packages, the streaming/batch differential under the race
## detector, and a short fuzz pass over the salvaging decoders. This is the
## single command to run before pushing.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/trace/... ./internal/core/...
	$(GO) test -race -run 'Streaming' .
	$(MAKE) fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrency-sensitive packages plus the root package's
## sharded-pipeline tests under the race detector.
race:
	$(GO) test -race ./internal/trace/... ./internal/core/... .

## bench: the sharded-pipeline benchmark battery from EXPERIMENTS.md, plus
## the overload-policy producer-latency comparison.
bench:
	$(GO) test -run xxx -bench 'Collect1M|Analyze1M|Build1M|Pipeline1M|Overload' -benchmem -benchtime 5x -count 5 .

## bench-stream: the streaming-engine acceptance numbers — full-pipeline time
## and post-collection live heap, batch vs streamed, at 1M and 2M events (the
## streamed live-heap-MB metric must stay flat when the event count doubles).
bench-stream:
	$(GO) test -run xxx -bench 'Pipeline1MStreamed|Pipeline1MBatchHeap|Pipeline2MStreamed|Pipeline2MBatchHeap' -benchmem -benchtime 5x .

## fuzz-smoke: 10 seconds of fuzzing per decoder entry point (go's fuzzer
## accepts one -fuzz pattern per run, hence the sequence). Catches wire-format
## regressions that crash or mis-account the salvaging loaders.
fuzz-smoke:
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzStreamReader$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzRecoverSessionLog$$' -fuzztime 10s
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzChecksummedFrameReader$$' -fuzztime 10s

clean:
	$(GO) clean ./...
