GO ?= go

.PHONY: check build vet test race bench clean

## check: everything CI runs — build, vet, full tests, race tests on the
## concurrent packages. This is the single command to run before pushing.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/trace/... ./internal/core/...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: the concurrency-sensitive packages plus the root package's
## sharded-pipeline tests under the race detector.
race:
	$(GO) test -race ./internal/trace/... ./internal/core/... .

## bench: the sharded-pipeline benchmark battery from EXPERIMENTS.md.
bench:
	$(GO) test -run xxx -bench 'Collect1M|Analyze1M|Build1M|Pipeline1M' -benchmem -benchtime 5x -count 5 .

clean:
	$(GO) clean ./...
