// Command dsbench regenerates the paper's evaluation artifacts: Figures 2
// and 3 and Tables II through VII.
//
// Usage:
//
//	dsbench                 # everything
//	dsbench -only table4    # one artifact: fig2, fig3, table2..table7, scaling
//	dsbench -workers 8      # parallelism for recommendation-applied code
//	dsbench -reps 5         # timing repetitions (best-of)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dsspy/internal/experiments"
)

func main() {
	var (
		only    = flag.String("only", "", "one of fig2, fig3, table2, table3, table4, table5, table6, table7")
		workers = flag.Int("workers", 0, "workers for parallel variants (0 = GOMAXPROCS)")
		reps    = flag.Int("reps", 0, "timing repetitions, best-of (0 = 3)")
	)
	flag.Parse()

	opts := experiments.Options{Workers: *workers, Reps: *reps}
	artifacts := []struct {
		name string
		run  func(io.Writer) error
	}{
		{"fig2", experiments.Figure2},
		{"fig3", experiments.Figure3},
		{"table2", experiments.Table2},
		{"table3", experiments.Table3},
		{"table4", func(w io.Writer) error { return experiments.Table4(w, opts) }},
		{"table5", experiments.Table5},
		{"table6", experiments.Table6},
		{"table7", experiments.Table7},
		{"scaling", func(w io.Writer) error { return experiments.Scaling(w, opts) }},
	}

	sel := strings.ToLower(strings.TrimSpace(*only))
	ran := false
	for _, a := range artifacts {
		if sel == "" && a.name == "scaling" {
			continue // scaling is opt-in: meaningless on single-core hosts
		}
		if sel != "" && a.name != sel {
			continue
		}
		if err := a.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dsbench: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dsbench: unknown artifact %q\n", sel)
		os.Exit(2)
	}
}
