// Command dsscan runs the empirical-study scanner over a Go project (the
// §II.A methodology transferred to Go sources): it counts data-structure
// instantiations, sizes the parallelization search space, and suggests the
// instrumented container for every raw allocation so the project can be
// profiled with DSspy.
//
// Usage:
//
//	dsscan            # scan the current directory
//	dsscan ./path     # scan a project
//	dsscan -suggest   # also list per-site instrumentation suggestions
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dsspy/internal/goscan"
	"dsspy/internal/report"
)

func main() {
	suggest := flag.Bool("suggest", false, "list per-site instrumentation suggestions")
	top := flag.Int("top", 10, "how many files/suggestions to list")
	flag.Parse()

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	res, err := goscan.ScanDir(root, os.ReadFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsscan:", err)
		os.Exit(1)
	}

	counts := res.CountByKind()
	tb := report.NewTable("Instantiation kind", "Count").AlignRight(1)
	tb.Title = fmt.Sprintf("Data-structure instantiations in %s (%d files, %d LOC)",
		root, len(res.Files), res.LOC())
	kinds := make([]goscan.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return counts[kinds[i]] > counts[kinds[j]] })
	total := 0
	for _, k := range kinds {
		tb.AddRow(string(k), counts[k])
		total += counts[k]
	}
	tb.AddSeparator()
	tb.AddRow("Total", total)
	if _, err := tb.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dsscan:", err)
		os.Exit(1)
	}

	// Densest files — where the search space concentrates.
	type fileCount struct {
		path string
		n    int
	}
	var files []fileCount
	for _, f := range res.Files {
		if len(f.Instances) > 0 {
			files = append(files, fileCount{f.Path, len(f.Instances)})
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n > files[j].n })
	fmt.Printf("\nDensest files:\n")
	for i, fc := range files {
		if i >= *top {
			break
		}
		fmt.Printf("  %4d  %s\n", fc.n, fc.path)
	}

	// Struct-member view — the Go analogue of §II.A's "every third class
	// contains a list member".
	var structLists [][]goscan.StructInfo
	for _, f := range res.Files {
		src, err := os.ReadFile(f.Path)
		if err != nil {
			continue
		}
		if structs, err := goscan.ScanStructs(f.Path, string(src)); err == nil {
			structLists = append(structLists, structs)
		}
	}
	ss := goscan.AggregateStructs(structLists...)
	if ss.Structs > 0 {
		fmt.Printf("\nStruct members: %d structs; %.0f%% carry a slice field, %.0f%% a map field (paper's C# corpus: 33%% with a list member).\n",
			ss.Structs, 100*ss.Fraction("slice"), 100*ss.Fraction("map"))
	}

	un := res.Uninstrumented()
	fmt.Printf("\n%d of %d instantiations are uninstrumented raw allocations.\n", len(un), total)
	if *suggest {
		fmt.Println("Instrumentation suggestions:")
		for i, in := range un {
			if i >= *top {
				fmt.Printf("  … and %d more (raise -top)\n", len(un)-i)
				break
			}
			fmt.Printf("  %s:%d  %-28s → %s\n", in.File, in.Line, in.Type, in.Suggestion)
		}
	}
}
