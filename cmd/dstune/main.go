// Command dstune reproduces the threshold-tuning step of §III.B: the use
// cases' threshold values were "tuned on the 23 programs to yield the best
// detection quality". It evaluates threshold assignments against the
// labeled use-case corpus and reports per-threshold sensitivity curves plus
// the result of a coordinate-descent search.
//
// Usage:
//
//	dstune               # sensitivity curves for the paper's thresholds
//	dstune -search       # coordinate descent from a deliberately bad start
package main

import (
	"flag"
	"fmt"
	"os"

	"dsspy/internal/report"
	"dsspy/internal/tuning"
	"dsspy/internal/usecase"
)

func main() {
	search := flag.Bool("search", false, "run coordinate descent from a detuned start")
	flag.Parse()

	fmt.Println("Building labeled samples (24 study programs)…")
	samples := tuning.BuildSamples()

	base := usecase.Default()
	q := tuning.Evaluate(samples, base)
	fmt.Printf("Paper thresholds: %v\n\n", q)

	for _, ax := range tuning.DefaultAxes() {
		tb := report.NewTable(ax.Name, "TP", "FP", "FN", "Precision", "Recall", "F1").
			AlignRight(1, 2, 3, 4, 5, 6)
		tb.Title = "Sensitivity: " + ax.Name
		for _, pt := range tuning.QualityCurve(samples, base, ax) {
			tb.AddRow(
				trimFloat(pt.Value),
				pt.Quality.TP, pt.Quality.FP, pt.Quality.FN,
				report.F2(pt.Quality.Precision()),
				report.F2(pt.Quality.Recall()),
				report.F2(pt.Quality.F1()),
			)
		}
		if _, err := tb.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *search {
		start := base
		start.LIMinRunLen = 10
		start.SAIMinRunLen = 10
		start.FLRMinPatterns = 40
		fmt.Printf("Detuned start (LI.MinRunLen=10, FLR.MinPatterns=40): %v\n",
			tuning.Evaluate(samples, start))
		tuned, tq, trace := tuning.Tune(samples, start, tuning.DefaultAxes(), 3)
		fmt.Printf("After coordinate descent (%d candidate evaluations): %v\n", len(trace), tq)
		fmt.Printf("Tuned: LI.MinRunLen=%d LI.MinPhaseFraction=%.2f IQ.MinEndFraction=%.2f FS.MinSearchOps=%d FLR.MinPatterns=%d FLR.MinCoverage=%.2f\n",
			tuned.LIMinRunLen, tuned.LIMinPhaseFraction, tuned.IQMinEndFraction,
			tuned.FSMinSearchOps, tuned.FLRMinPatterns, tuned.FLRMinCoverage)
		fmt.Printf("Paper:  LI.MinRunLen=100 LI.MinPhaseFraction=0.30 IQ.MinEndFraction=0.60 FS.MinSearchOps=1000 FLR.MinPatterns=10 FLR.MinCoverage=0.50\n")
	}
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dstune:", err)
	os.Exit(1)
}
