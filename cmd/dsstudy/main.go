// Command dsstudy regenerates the paper's empirical study (§II): Table I
// (program distribution across domains) and Figure 1 (data-structure
// occurrence per program), by generating the 37-program corpus and re-running
// the regex-based static scan over it.
//
// Usage:
//
//	dsstudy            # Table I + Figure 1
//	dsstudy -table1
//	dsstudy -fig1
//	dsstudy -dump DIR  # also write the generated C#-like sources
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dsspy/internal/corpus"
	"dsspy/internal/experiments"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print only Table I")
		fig1     = flag.Bool("fig1", false, "print only Figure 1")
		findings = flag.Bool("findings", false, "print only the §II.A prose findings")
		dump     = flag.String("dump", "", "write the generated corpus sources into this directory")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpCorpus(*dump); err != nil {
			fmt.Fprintln(os.Stderr, "dsstudy:", err)
			os.Exit(1)
		}
	}

	all := !*table1 && !*fig1 && !*findings
	if *table1 || all {
		if err := experiments.Table1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dsstudy:", err)
			os.Exit(1)
		}
	}
	if *fig1 || all {
		if err := experiments.Figure1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dsstudy:", err)
			os.Exit(1)
		}
	}
	if *findings || all {
		if err := experiments.StudyFindings(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dsstudy:", err)
			os.Exit(1)
		}
	}
}

func dumpCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	types := corpus.TypeAllocation()
	arrays := corpus.ArrayAllocation()
	for _, p := range corpus.StaticPrograms() {
		src := corpus.GenerateSource(p, types[p.Name], arrays[p.Name])
		name := filepath.Join(dir, sanitize(p.Name)+".cs")
		if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("corpus written to %s (37 files)\n", dir)
	return nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
