package main

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dsspy/internal/core"
	"dsspy/internal/metrics"
	"dsspy/internal/obs"
	"dsspy/internal/sample"
	"dsspy/internal/trace"
)

// newLogger builds the process logger from -v/-quiet: debug with -v, errors
// only with -quiet, info otherwise. Diagnostics go to stderr so stdout stays
// the report.
func newLogger(o *options) *slog.Logger {
	level := slog.LevelInfo
	if o.verbose {
		level = slog.LevelDebug
	}
	if o.quiet {
		level = slog.LevelError
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
}

// newTracer builds the self-tracer when -trace-out or -http wants one, laned
// by the trace package's dense goroutine ids.
func newTracer(o *options) *obs.Tracer {
	if o.traceOut == "" && o.httpAddr == "" {
		return nil
	}
	t := obs.NewTracer(1 << 16)
	t.TIDFunc = func() uint64 { return uint64(trace.CurrentThreadID()) }
	return t
}

// startObsServer starts the -http surface and announces it. Returns nil when
// -http is off.
func startObsServer(o *options, tracer *obs.Tracer) *obs.Server {
	if o.httpAddr == "" {
		return nil
	}
	srv := obs.NewServer()
	if tracer != nil {
		srv.AddSource(tracer)
	}
	addr, err := srv.Start(o.httpAddr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("observability server on http://%s (/metrics /statusz /healthz /debug/pprof)\n", addr)
	return srv
}

// exportTrace writes the Chrome trace-event JSON at exit.
func exportTrace(o *options, tracer *obs.Tracer) {
	if o.traceOut == "" || tracer == nil {
		return
	}
	f, err := os.Create(o.traceOut)
	if err != nil {
		fatal(err)
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("pipeline trace written to %s (%d spans, %d dropped) — load in ui.perfetto.dev or chrome://tracing\n",
		o.traceOut, tracer.Len(), tracer.Dropped())
}

// sampleInterval picks the occupancy-sampling period: the default interval
// when -stats or -http wants the figures, zero (disabled) otherwise.
func sampleInterval(on bool) time.Duration {
	if on {
		return obs.DefaultSampleInterval
	}
	return 0
}

// runLabel names the run for status pages and report titles.
func runLabel(o *options) string {
	switch {
	case o.appName != "":
		return o.appName
	case o.demo != "":
		return "demo " + o.demo
	case o.replay != "":
		return "replay " + o.replay
	case o.recoverPath != "":
		return "recover " + o.recoverPath
	case o.listen != "":
		return "collector " + o.listen
	}
	return "dsspy"
}

// streamStatus builds the /statusz model for a live streaming run: run info,
// the largest instances with their patterns and findings, every use case so
// far, and the collector's per-shard queue figures. Each call takes a fresh
// analyzer snapshot, so the page tracks the run as it refreshes.
func streamStatus(label string, start time.Time, s *trace.Session, sa *core.StreamAnalyzer, scol *trace.ShardedCollector, ctrl *sample.Controller) *obs.Status {
	rep := sa.Snapshot()
	ss := rep.Stats.Streaming
	aggFlushes, aggEvents := s.AggregateStats()

	st := &obs.Status{Title: "dsspy — " + label}
	st.Sections = append(st.Sections, obs.StatusSection{
		Title: "Run",
		KV: []obs.StatusKV{
			{Key: "workload", Value: label},
			{Key: "running", Value: time.Since(start).Round(time.Millisecond).String()},
			{Key: "events folded", Value: fmt.Sprint(ss.Folded)},
			{Key: "instances", Value: fmt.Sprint(ss.Instances)},
			{Key: "open runs", Value: fmt.Sprint(ss.OpenRuns)},
			{Key: "out-of-order", Value: fmt.Sprint(ss.OutOfOrder)},
			{Key: "shards", Value: fmt.Sprint(ss.Shards)},
			{Key: "aggregate flushes", Value: fmt.Sprint(aggFlushes)},
			{Key: "aggregated events", Value: fmt.Sprint(aggEvents)},
		},
	})

	st.Sections = append(st.Sections, instanceSection(rep))
	st.Sections = append(st.Sections, useCaseSection(rep))
	if ctrl != nil {
		st.Sections = append(st.Sections, samplingSection(ctrl))
	}
	if scol != nil {
		st.Sections = append(st.Sections, shardSection(scol.Stats()))
	}
	return st
}

// samplingSection tables the adaptive-sampling controller's per-instance
// state: who is backed off, at what rate, and with what confidence bound.
func samplingSection(ctrl *sample.Controller) obs.StatusSection {
	insts := ctrl.Instances()
	table := &obs.StatusTable{Header: []string{
		"instance", "state", "rate", "observed", "folded", "aggregated", "sampled out", "windows", "re-promotions", "bound",
	}}
	for _, is := range insts {
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(is.ID), is.State.String(), fmt.Sprintf("1:%d", is.Rate),
			fmt.Sprint(is.Observed), fmt.Sprint(is.Kept), fmt.Sprint(is.Aggregated), fmt.Sprint(is.Dropped),
			fmt.Sprintf("%d (%d agree)", is.Windows, is.Agree),
			fmt.Sprint(is.RePromotions),
			fmt.Sprintf("%.4f", is.Bound),
		})
	}
	t := ctrl.Totals()
	return obs.StatusSection{
		Title: fmt.Sprintf("Sampling (%s: %d instance(s), %d backed off)",
			ctrl.Config().Mode, t.Instances, t.BackedOff),
		Table: table,
	}
}

// instanceSection tables the largest profiles first, like -live.
func instanceSection(rep *core.Report) obs.StatusSection {
	instances := make([]*core.InstanceResult, len(rep.Instances))
	copy(instances, rep.Instances)
	sort.Slice(instances, func(i, j int) bool { return instances[i].Profile.Len() > instances[j].Profile.Len() })
	table := &obs.StatusTable{Header: []string{"kind", "instance", "events", "patterns", "use cases"}}
	const maxRows = 20
	for i, ir := range instances {
		if i == maxRows {
			break
		}
		inst := ir.Profile.Instance
		name := inst.TypeName
		if inst.Label != "" {
			name += " " + inst.Label
		}
		var shorts []string
		for _, u := range ir.UseCases {
			shorts = append(shorts, u.Kind.Short())
		}
		table.Rows = append(table.Rows, []string{
			inst.Kind.String(), name,
			fmt.Sprint(ir.Profile.Len()),
			fmt.Sprint(len(ir.Patterns())),
			strings.Join(shorts, ","),
		})
	}
	title := "Instances"
	if len(instances) > maxRows {
		title = fmt.Sprintf("Instances (top %d of %d)", maxRows, len(instances))
	}
	return obs.StatusSection{Title: title, Table: table}
}

// useCaseSection tables the findings so far.
func useCaseSection(rep *core.Report) obs.StatusSection {
	table := &obs.StatusTable{Header: []string{"#", "use case", "position", "data structure", "evidence"}}
	for i, u := range rep.UseCases() {
		site := u.Instance.Site
		pos := "<unknown>"
		if site.File != "" {
			pos = fmt.Sprintf("%s:%d", filepath.Base(site.File), site.Line)
		}
		name := u.Instance.TypeName
		if u.Instance.Label != "" {
			name += " " + u.Instance.Label
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(i + 1), u.Kind.String(), pos, name, u.Evidence,
		})
	}
	return obs.StatusSection{Title: fmt.Sprintf("Use-case findings (%d)", len(table.Rows)), Table: table}
}

// shardSection tables the collector's live queue figures.
func shardSection(cs trace.CollectorStats) obs.StatusSection {
	table := &obs.StatusTable{Header: []string{"shard", "events", "dropped", "high-water", "block", "depth p50", "depth p99"}}
	for i := range cs.ShardEvents {
		p50, p99 := "-", "-"
		if i < len(cs.ShardQueueDepth) && cs.ShardQueueDepth[i].Count > 0 {
			p50 = fmt.Sprintf("%.0f", cs.ShardQueueDepth[i].Quantile(0.50))
			p99 = fmt.Sprintf("%.0f", cs.ShardQueueDepth[i].Quantile(0.99))
		}
		dropped := uint64(0)
		if i < len(cs.ShardDropped) {
			dropped = cs.ShardDropped[i]
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(i), fmt.Sprint(cs.ShardEvents[i]), fmt.Sprint(dropped),
			fmt.Sprintf("%d/%d", cs.ShardHighWater[i], cs.Buffer),
			cs.ShardBlock[i].Round(time.Microsecond).String(), p50, p99,
		})
	}
	return obs.StatusSection{
		Title: fmt.Sprintf("Collector shards (policy %s)", cs.Policy),
		Table: table,
	}
}

// listenStatus builds the /statusz model for the collector side of a
// cross-process run: accept counters plus a per-connection table.
func listenStatus(addr string, start time.Time, cs *trace.CollectorServer) *obs.Status {
	ss := cs.ServerStats()
	st := &obs.Status{Title: "dsspy — collector " + addr}
	kv := []obs.StatusKV{
		{Key: "listening", Value: addr},
		{Key: "running", Value: time.Since(start).Round(time.Millisecond).String()},
		{Key: "conns accepted", Value: fmt.Sprint(ss.Accepted)},
		{Key: "conns rejected", Value: fmt.Sprint(ss.Rejected)},
		{Key: "accept retries", Value: fmt.Sprint(ss.AcceptRetries)},
		{Key: "salvaged events", Value: fmt.Sprint(ss.SalvagedEvents())},
	}
	if ss.StoreDepth.Count > 0 {
		kv = append(kv, obs.StatusKV{
			Key:   "store depth p50/p99",
			Value: fmt.Sprintf("%.0f / %.0f", ss.StoreDepth.Quantile(0.50), ss.StoreDepth.Quantile(0.99)),
		})
	}
	st.Sections = append(st.Sections, obs.StatusSection{Title: "Server", KV: kv})

	table := &obs.StatusTable{Header: []string{"#", "remote", "events", "complete", "error"}}
	for i, c := range ss.Conns {
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(i + 1), c.Remote, fmt.Sprint(c.Events), fmt.Sprint(c.Complete), c.Err,
		})
	}
	st.Sections = append(st.Sections, obs.StatusSection{
		Title: fmt.Sprintf("Producer streams (%d)", len(table.Rows)), Table: table,
	})
	return st
}

// daemonStatus is the /statusz page of `dsspy -listen -daemon`: the server
// section plus a per-tenant row set — admission level, quota accounting, and
// window state — so one glance shows who is degraded and why.
func daemonStatus(addr string, start time.Time, cs *trace.CollectorServer, daemon *core.Daemon) *obs.Status {
	st := listenStatus(addr, start, cs)
	st.Title = "dsspy — daemon " + addr

	windows := map[string]core.DaemonTenantStatus{}
	for _, ds := range daemon.Status() {
		windows[ds.Tenant] = ds
	}
	table := &obs.StatusTable{Header: []string{
		"tenant", "level", "conns", "received", "delivered", "sampled out", "dropped",
		"timeouts", "open window", "closed windows", "shed bound",
	}}
	for _, ts := range cs.TenantStats() {
		ds := windows[ts.Tenant]
		level := ts.Level.String()
		if ts.Quarantined {
			level += " (quarantined)"
		}
		table.Rows = append(table.Rows, []string{
			ts.Tenant, level,
			fmt.Sprintf("%d (%d rejected)", ts.Conns, ts.ConnsRejected),
			fmt.Sprint(ts.Received), fmt.Sprint(ts.Delivered),
			fmt.Sprint(ts.SampledOut), fmt.Sprint(ts.Dropped),
			fmt.Sprint(ts.Timeouts),
			fmt.Sprint(ds.OpenEvents),
			fmt.Sprintf("%d (%d rotated, %d evicted)", ds.Windows, ds.Rotated, ds.Evicted),
			fmt.Sprintf("%.4f", ds.ShedBound),
		})
	}
	st.Sections = append(st.Sections, obs.StatusSection{
		Title: fmt.Sprintf("Tenants (%d)", len(table.Rows)), Table: table,
	})
	return st
}

// overheadStats assembles the §V self-overhead accounting from the timed
// recorder's sampled Record costs and the measured workload clocks.
func overheadStats(timed *trace.TimedRecorder, wall, plainWall time.Duration) *metrics.OverheadStats {
	h := timed.Hist()
	return &metrics.OverheadStats{
		WorkloadWall:      wall,
		PlainWall:         plainWall,
		Events:            int64(timed.Count()),
		Sampled:           int64(h.Count),
		SampleEvery:       timed.SampleEvery(),
		RecordMean:        h.MeanDuration(),
		RecordP50:         h.QuantileDuration(0.50),
		RecordP99:         h.QuantileDuration(0.99),
		EstimatedOverhead: time.Duration(h.Mean() * float64(timed.Count())),
	}
}
