package main

import (
	"testing"
	"time"
)

func TestParseQuotas(t *testing.T) {
	opts, err := parseQuotas("alpha:rate=500,burst=100,conns=2,timeout=250ms;beta:sample=16,memory=5000;*:rate=50")
	if err != nil {
		t.Fatal(err)
	}
	a := opts.PerTenant["alpha"]
	if a.EventsPerSec != 500 || a.Burst != 100 || a.MaxConns != 2 || a.ConnTimeout != 250*time.Millisecond {
		t.Fatalf("alpha quota = %+v", a)
	}
	b := opts.PerTenant["beta"]
	if b.SampleN != 16 || b.MaxStoredEvents != 5000 {
		t.Fatalf("beta quota = %+v", b)
	}
	if opts.Default.EventsPerSec != 50 {
		t.Fatalf("default quota = %+v", opts.Default)
	}
}

func TestParseQuotasUnnamedBlockIsDefault(t *testing.T) {
	opts, err := parseQuotas("rate=100,burst=20")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Default.EventsPerSec != 100 || opts.Default.Burst != 20 {
		t.Fatalf("default quota = %+v", opts.Default)
	}
	if len(opts.PerTenant) != 0 {
		t.Fatalf("unexpected per-tenant quotas: %v", opts.PerTenant)
	}
}
