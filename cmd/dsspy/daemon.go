package main

// The fleet side of the CLI: `dsspy -listen -daemon` runs the multi-tenant
// collector daemon, `dsspy -merge` folds saved report snapshots into one
// fleet view, and producerHello stamps -collect streams with their tenant
// identity.

import (
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"dsspy/internal/core"
	"dsspy/internal/obs"
	"dsspy/internal/trace"
)

// producerHello is the identity a -collect producer announces: the -tenant
// flag, host:pid, and the process start time — enough for the daemon to bind
// every (re)connected incarnation of this stream to one tenant and tell runs
// apart in its logs.
func producerHello(o *options) *trace.Hello {
	host, _ := os.Hostname()
	return &trace.Hello{
		Tenant:  o.tenant,
		Process: fmt.Sprintf("%s:%d", host, os.Getpid()),
		Run:     time.Now().UTC().Format(time.RFC3339),
	}
}

// runMerge folds saved report snapshots (written by -save-report or the
// daemon's checkpoints) into one fleet report. Snapshots without an origin
// get their filename, so same-ID instances from different files stay
// distinct.
func runMerge(o *options) {
	reports := make([]*core.Report, 0, len(o.mergeFiles))
	for _, path := range o.mergeFiles {
		rep, err := core.LoadReportFile(path)
		if err != nil {
			fatal(err)
		}
		if rep.Origin == "" {
			rep.Origin = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		reports = append(reports, rep)
	}
	merged, ms := core.MergeReports(reports...)
	fmt.Printf("merged %d report(s): %d instance(s), %d duplicate(s) folded, %d conflict(s) resolved\n\n",
		ms.Reports, ms.Instances, ms.Duplicates, ms.Conflicts)
	if err := merged.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if o.saveReport != "" {
		if err := core.SaveReportFile(o.saveReport, merged); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmerged snapshot written to %s\n", o.saveReport)
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := merged.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nJSON findings written to %s\n", o.jsonPath)
	}
}

// runDaemon is `dsspy -listen <addr> -daemon`: a durable multi-tenant
// collector. Producers with hello frames are admitted under their tenant's
// quota; admitted events fold into per-tenant rolling analysis windows;
// SIGTERM drains connections (bounded by -drain-timeout), checkpoints every
// tenant to -checkpoint-dir, and prints per-tenant plus fleet reports. A
// restart with the same -checkpoint-dir resumes from the checkpoints.
func runDaemon(analyzer *core.DSspy, o *options, tracer *obs.Tracer, srv *obs.Server, sampling bool) {
	// The collector server is built after the daemon (it needs the daemon as
	// its sink), so the delivery-counter hook binds late through this var.
	var tenantCounters func(tenant string) (received, delivered uint64)
	daemon := analyzer.NewDaemon(core.DaemonConfig{
		WindowEvents:  o.windowEv,
		CheckpointDir: o.ckptDir,
		Shards:        o.shards,
		Logger:        slog.Default(),
		TenantSampling: func(tenant string) (uint64, uint64) {
			if tenantCounters == nil {
				return 0, 0
			}
			return tenantCounters(tenant)
		},
	})
	if n, err := daemon.Restore(); err != nil {
		fatal(err)
	} else if n > 0 {
		fmt.Printf("restored %d tenant(s) from %s\n", n, o.ckptDir)
	}

	tenancy := &trace.TenancyOptions{Sink: daemon}
	if o.quotas != "" {
		parsed, err := parseQuotas(o.quotas)
		if err != nil {
			fatal(err)
		}
		tenancy.Default = parsed.Default
		tenancy.PerTenant = parsed.PerTenant
	}
	cs, err := trace.ListenCollectorOpts("tcp", o.listen, trace.ServerOptions{
		ConnTimeout:    o.connTO,
		Logger:         slog.Default(),
		Tracer:         tracer,
		SampleInterval: sampleInterval(sampling),
		Tenancy:        tenancy,
	})
	if err != nil {
		fatal(err)
	}
	tenantCounters = func(tenant string) (uint64, uint64) {
		for _, ts := range cs.TenantStats() {
			if ts.Tenant == tenant {
				return ts.Received, ts.Delivered
			}
		}
		return 0, 0
	}
	if srv != nil {
		srv.AddSource(cs)
		srv.AddSource(daemon)
		start := time.Now()
		srv.SetStatus(func() *obs.Status { return daemonStatus(o.listen, start, cs, daemon) })
	}
	fmt.Printf("daemon collecting on %s (SIGTERM drains and checkpoints)\n", cs.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	signal.Stop(sig)
	fmt.Printf("\n%s: draining in-flight streams (up to %s)...\n", got, o.drainTO)
	cut, err := cs.Drain(o.drainTO)
	if err != nil {
		slog.Warn("drain finished with errors", "err", err)
	}
	if cut > 0 {
		fmt.Printf("drain timeout: cut %d still-open stream(s); events decoded before the cut are kept\n", cut)
	}
	if o.ckptDir != "" {
		if err := daemon.Checkpoint(); err != nil {
			slog.Error("checkpoint failed", "err", err)
		} else {
			fmt.Printf("checkpointed %d tenant(s) to %s\n", len(daemon.Tenants()), o.ckptDir)
		}
	}

	for _, ts := range cs.TenantStats() {
		fmt.Printf("tenant %s: level %s, %d conn(s) served (%d rejected, %d timed out), %d received = %d delivered + %d sampled out + %d dropped\n",
			ts.Tenant, ts.Level, ts.ConnsServed, ts.ConnsRejected, ts.Timeouts,
			ts.Received, ts.Delivered, ts.SampledOut, ts.Dropped)
	}

	for _, tenant := range daemon.Tenants() {
		fmt.Printf("\n=== tenant %s ===\n", tenant)
		if err := daemon.TenantReport(tenant).Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if names := daemon.Tenants(); len(names) > 1 {
		fmt.Printf("\n=== fleet (%d tenants) ===\n", len(names))
		if err := daemon.FleetReport().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if o.stats {
		fmt.Println()
		if err := cs.ServerStats().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}
