package main

import (
	"io"
	"strings"
	"testing"

	"dsspy/internal/sample"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error, "" for valid
	}{
		{"app alone", []string{"-app", "Mandelbrot"}, ""},
		{"demo alone", []string{"-demo", "figure3"}, ""},
		{"replay alone", []string{"-replay", "run.dslog"}, ""},
		{"stream run", []string{"-app", "Mandelbrot", "-stream", "-http", ":0"}, ""},
		{"collect with spill", []string{"-app", "Algorithmia", "-collect", "h:1", "-spill-dir", "/tmp"}, ""},
		{"listen alone", []string{"-listen", ":7777", "-conns", "2"}, ""},
		{"replay streamed", []string{"-replay", "run.dslog", "-stream"}, ""},
		{"daemon run", []string{"-listen", ":7777", "-daemon", "-checkpoint-dir", "/tmp/ck",
			"-window-events", "100000", "-quotas", "alpha:rate=500,conns=2;beta:sample=16"}, ""},
		{"tenant producer", []string{"-app", "Algorithmia", "-collect", "h:1", "-tenant", "alpha"}, ""},
		{"merge snapshots", []string{"-merge", "a.json", "b.json"}, ""},
		{"save report", []string{"-app", "Mandelbrot", "-save-report", "out.json"}, ""},
		{"sample adaptive", []string{"-app", "Mandelbrot", "-sample", "adaptive"}, ""},
		{"sample static", []string{"-app", "Mandelbrot", "-sample", "1:64"}, ""},
		{"sample full is lossless", []string{"-replay", "run.dslog", "-sample", "full"}, ""},
		{"min confidence", []string{"-app", "a", "-sample", "adaptive", "-min-confidence", "0.9"}, ""},

		{"app and demo", []string{"-app", "a", "-demo", "d"}, "-app and -demo"},
		{"replay and app", []string{"-replay", "f", "-app", "a"}, "-replay and -app"},
		{"replay and demo", []string{"-replay", "f", "-demo", "d"}, "-replay and -demo"},
		{"replay and recover", []string{"-replay", "f", "-recover", "g"}, "-replay and -recover"},
		{"replay and collect", []string{"-replay", "f", "-collect", "h:1"}, "-replay and -collect"},
		{"recover and collect", []string{"-recover", "f", "-collect", "h:1"}, "-recover and -collect"},
		{"recover and app", []string{"-recover", "f", "-app", "a"}, "-recover and -app"},
		{"listen and app", []string{"-listen", ":1", "-app", "a"}, "-listen and -app"},
		{"listen and collect", []string{"-listen", ":1", "-collect", "h:1"}, "-listen and -collect"},
		{"collect and stream", []string{"-app", "a", "-collect", "h:1", "-stream"}, "-collect and -stream"},
		{"collect and live", []string{"-app", "a", "-collect", "h:1", "-live", "1s"}, "-collect and -stream"},
		{"spill without collect", []string{"-app", "a", "-spill-dir", "/tmp"}, "-spill-dir requires -collect"},
		{"v and quiet", []string{"-app", "a", "-v", "-quiet"}, "-v and -quiet"},

		{"daemon without listen", []string{"-daemon"}, "-daemon requires -listen"},
		{"daemon and merge", []string{"-listen", ":1", "-daemon", "-merge", "a.json"}, "-merge and -listen"},
		{"checkpoint without daemon", []string{"-listen", ":1", "-checkpoint-dir", "/tmp/ck"}, "-checkpoint-dir requires -daemon"},
		{"window-events without daemon", []string{"-listen", ":1", "-window-events", "100"}, "-window-events requires -daemon"},
		{"quotas without daemon", []string{"-listen", ":1", "-quotas", "alpha:rate=5"}, "-quotas requires -daemon"},
		{"tenant without collect", []string{"-app", "a", "-tenant", "alpha"}, "-tenant requires -collect"},
		{"merge and app", []string{"-merge", "-app", "a", "x.json"}, "-merge and -app"},
		{"merge and replay", []string{"-merge", "-replay", "run.dslog", "x.json"}, "-merge and -replay"},
		{"merge without files", []string{"-merge"}, "at least one report snapshot"},
		{"bad quotas pair", []string{"-listen", ":1", "-daemon", "-quotas", "alpha:rate"}, "not key=value"},
		{"bad quotas key", []string{"-listen", ":1", "-daemon", "-quotas", "alpha:speed=9"}, "unknown key"},
		{"bad quotas rate", []string{"-listen", ":1", "-daemon", "-quotas", "alpha:rate=fast"}, "rate"},

		{"sample and replay", []string{"-replay", "f", "-sample", "adaptive"}, "-sample and -replay"},
		{"sample and recover", []string{"-recover", "f", "-sample", "1:8"}, "-sample and -recover"},
		{"sample and collect", []string{"-app", "a", "-collect", "h:1", "-sample", "adaptive"}, "-sample and -collect"},
		{"sample and listen", []string{"-listen", ":1", "-sample", "adaptive"}, "-sample and -listen"},
		{"sample and merge", []string{"-merge", "-sample", "1:4", "x.json"}, "-sample and -merge"},
		{"min confidence without sample", []string{"-app", "a", "-min-confidence", "0.5"}, "-min-confidence requires -sample"},
		{"min confidence out of range", []string{"-app", "a", "-sample", "adaptive", "-min-confidence", "1.5"}, "min-confidence"},
		{"bad sample rate", []string{"-app", "a", "-sample", "1:0"}, "sample"},
		{"bad sample mode", []string{"-app", "a", "-sample", "sometimes"}, "sample"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

func TestLiveImpliesStream(t *testing.T) {
	o, err := parseFlags([]string{"-app", "a", "-live", "500ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.stream {
		t.Fatal("-live should imply -stream")
	}
}

func TestSampleImpliesStream(t *testing.T) {
	o, err := parseFlags([]string{"-app", "a", "-sample", "adaptive"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.stream {
		t.Fatal("-sample=adaptive should imply -stream: the gate feeds the streaming reducers")
	}
	if o.sampleCfg.Mode != sample.ModeAdaptive {
		t.Fatalf("parsed sample config mode = %v, want adaptive", o.sampleCfg.Mode)
	}

	o, err = parseFlags([]string{"-app", "a", "-sample", "1:16"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.stream || o.sampleCfg.Mode != sample.ModeStatic || o.sampleCfg.StaticRate != 16 {
		t.Fatalf("-sample=1:16 parsed as %+v (stream=%v)", o.sampleCfg, o.stream)
	}

	// full stays in whatever analysis mode the rest of the line picked.
	o, err = parseFlags([]string{"-app", "a", "-sample", "full"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.stream {
		t.Fatal("-sample=full must not force -stream")
	}
}
