package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"dsspy/internal/sample"
)

// options is the parsed command line. Parsing is separated from main so the
// conflict rules are testable without forking the process.
type options struct {
	listApps    bool
	appName     string
	demo        string
	chart       bool
	svgPath     string
	htmlPath    string
	jsonPath    string
	advise      bool
	cores       int
	logPath     string
	replay      string
	recoverPath string
	collect     string
	spillDir    string
	listen      string
	conns       int
	connTO      time.Duration
	overload    string
	daemon      bool
	drainTO     time.Duration
	ckptDir     string
	windowEv    int
	tenant      string
	quotas      string
	merge       bool
	mergeFiles  []string
	saveReport  string
	stream      bool
	live        time.Duration
	stats       bool
	shards      int
	workers     int
	sampleMode  string
	sampleCfg   sample.Config // parsed form of sampleMode, set by validate
	minConf     float64

	httpAddr string
	traceOut string
	verbose  bool
	quiet    bool
}

// parseFlags parses args (not including the program name) into options.
// Output (usage text, errors) goes to errw.
func parseFlags(args []string, errw io.Writer) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("dsspy", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.BoolVar(&o.listApps, "list", false, "list available programs and demos")
	fs.StringVar(&o.appName, "app", "", "evaluation program to profile")
	fs.StringVar(&o.demo, "demo", "", "demo workload: figure2, figure3, queue, stack")
	fs.BoolVar(&o.chart, "chart", false, "print an ASCII profile chart per instance with findings")
	fs.StringVar(&o.svgPath, "svg", "", "write an SVG profile chart of the first flagged instance")
	fs.StringVar(&o.htmlPath, "html", "", "write a self-contained HTML report")
	fs.StringVar(&o.jsonPath, "json", "", "write the findings as JSON")
	fs.BoolVar(&o.advise, "advise", false, "print ranked transformation plans with Amdahl estimates")
	fs.IntVar(&o.cores, "cores", 8, "core count for the advisor's Amdahl estimates")
	fs.StringVar(&o.logPath, "log", "", "save the session (registry + events) to this file for -replay")
	fs.StringVar(&o.replay, "replay", "", "re-analyze a session log written with -log instead of running a workload")
	fs.StringVar(&o.recoverPath, "recover", "", "salvage a damaged or truncated session log and analyze what was recovered")
	fs.StringVar(&o.collect, "collect", "", "ship events to a collector at host:port instead of in-process")
	fs.StringVar(&o.spillDir, "spill-dir", "", "with -collect: spill events to a WAL in this directory while the collector is unreachable")
	fs.StringVar(&o.listen, "listen", "", "run as the collector: accept producer streams on host:port and analyze them")
	fs.BoolVar(&o.daemon, "daemon", false, "with -listen: run forever as a multi-tenant daemon (sessions come and go; SIGTERM drains and checkpoints)")
	fs.DurationVar(&o.drainTO, "drain-timeout", 5*time.Second, "with -listen: how long SIGTERM/SIGINT waits for in-flight streams before cutting them")
	fs.StringVar(&o.ckptDir, "checkpoint-dir", "", "with -daemon: persist per-tenant snapshots here on SIGTERM and restore them on start")
	fs.IntVar(&o.windowEv, "window-events", 0, "with -daemon: rotate a tenant's analysis window after this many events (0 = 1<<20)")
	fs.StringVar(&o.tenant, "tenant", "", "with -collect: tenant identity sent in the stream hello (default tenant when empty)")
	fs.StringVar(&o.quotas, "quotas", "", "with -daemon: per-tenant quotas, e.g. 'alpha:rate=500,conns=2;beta:rate=100' (keys: rate, burst, conns, sample, timeout, memory)")
	fs.BoolVar(&o.merge, "merge", false, "merge report snapshots (positional args) into one fleet report")
	fs.StringVar(&o.saveReport, "save-report", "", "write the final report as a snapshot loadable by -merge")
	fs.IntVar(&o.conns, "conns", 1, "with -listen: number of producer streams to wait for before analyzing")
	fs.DurationVar(&o.connTO, "conn-timeout", 0, "with -listen: per-frame read deadline on producer connections (0 = none); with -collect: write deadline per batch")
	fs.StringVar(&o.overload, "overload", "block", "in-process overload policy: block (lossless), drop, or sample:N")
	fs.BoolVar(&o.stream, "stream", false, "analyze incrementally while the workload runs (bounded memory; events are not retained unless -log asks for them)")
	fs.DurationVar(&o.live, "live", 0, "print a live snapshot table at this interval while streaming (implies -stream)")
	fs.BoolVar(&o.stats, "stats", false, "print pipeline observability: per-stage latency quantiles, per-shard queue statistics, delivery accounting, and self-overhead")
	fs.IntVar(&o.shards, "shards", 0, "collector shards (events partitioned by instance); 0 = GOMAXPROCS, 1 = the single-channel async collector")
	fs.IntVar(&o.workers, "workers", 0, "analysis worker-pool size; 0 = GOMAXPROCS, 1 = sequential")
	fs.StringVar(&o.sampleMode, "sample", "full", "per-instance sampling: full (lossless), adaptive (back off once classification stabilizes), or 1:N (static burst rate); non-full implies -stream")
	fs.Float64Var(&o.minConf, "min-confidence", 0, "with -sample: suppress findings whose sampling confidence is below this (0..1)")
	fs.StringVar(&o.httpAddr, "http", "", "serve live observability on this address: /metrics, /statusz, /healthz, /debug/pprof")
	fs.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON of DSspy's own pipeline spans (load in Perfetto)")
	fs.BoolVar(&o.verbose, "v", false, "verbose diagnostics (debug-level logging)")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress diagnostics below error level")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.live > 0 {
		o.stream = true
	}
	if o.sampleMode != "" && o.sampleMode != "full" {
		// The gate feeds the streaming reducers; batch analysis would retain
		// only the admitted events anyway, so sampling implies -stream.
		o.stream = true
	}
	o.mergeFiles = fs.Args()
	if err := o.validate(); err != nil {
		fmt.Fprintln(errw, "dsspy:", err)
		return nil, err
	}
	return o, nil
}

// isSet reports whether the named flag was given a non-default value, for
// the conflict table below.
func (o *options) isSet(name string) bool {
	switch name {
	case "app":
		return o.appName != ""
	case "demo":
		return o.demo != ""
	case "replay":
		return o.replay != ""
	case "recover":
		return o.recoverPath != ""
	case "collect":
		return o.collect != ""
	case "listen":
		return o.listen != ""
	case "spill-dir":
		return o.spillDir != ""
	case "stream":
		return o.stream
	case "v":
		return o.verbose
	case "quiet":
		return o.quiet
	case "daemon":
		return o.daemon
	case "checkpoint-dir":
		return o.ckptDir != ""
	case "window-events":
		return o.windowEv != 0
	case "tenant":
		return o.tenant != ""
	case "quotas":
		return o.quotas != ""
	case "merge":
		return o.merge
	case "save-report":
		return o.saveReport != ""
	case "sample":
		return o.sampleMode != "" && o.sampleMode != "full"
	case "min-confidence":
		return o.minConf != 0
	}
	return false
}

// flagConflict names two flags that contradict each other.
type flagConflict struct {
	a, b   string
	reason string
}

// conflicts is the pairwise incompatibility table. A run is one of: workload
// (app/demo), replay, recovery, or collector side — the flags selecting them
// are mutually exclusive, and mode-specific flags reject the wrong mode.
var conflicts = []flagConflict{
	{"app", "demo", "pick one workload"},
	{"replay", "app", "a replay analyzes a log instead of running a workload"},
	{"replay", "demo", "a replay analyzes a log instead of running a workload"},
	{"replay", "recover", "pick one log to analyze"},
	{"replay", "collect", "a replay has no producer to ship events from"},
	{"replay", "listen", "a process replays a log or collects streams, not both"},
	{"recover", "app", "recovery analyzes a damaged log instead of running a workload"},
	{"recover", "demo", "recovery analyzes a damaged log instead of running a workload"},
	{"recover", "collect", "recovery analyzes a local WAL; there is nothing to ship"},
	{"recover", "listen", "a process recovers a log or collects streams, not both"},
	{"sample", "replay", "the sampling gate runs in the live producer; a replay analyzes a finished log"},
	{"sample", "recover", "the sampling gate runs in the live producer; recovery analyzes a finished log"},
	{"sample", "collect", "the gate's classification feedback lives in the analyzer, which -collect runs remotely"},
	{"sample", "listen", "the collector side runs no workload to sample"},
	{"sample", "merge", "a merge folds saved reports; their bounds already combine conservatively"},
	{"listen", "app", "the collector side runs no workload"},
	{"listen", "demo", "the collector side runs no workload"},
	{"listen", "collect", "a process is producer or collector, not both"},
	{"collect", "stream", "streaming analysis runs in the collector process, not the producer"},
	{"merge", "app", "a merge folds saved reports instead of running a workload"},
	{"merge", "demo", "a merge folds saved reports instead of running a workload"},
	{"merge", "replay", "a merge folds saved report snapshots, not session logs"},
	{"merge", "recover", "a merge folds saved report snapshots, not session logs"},
	{"merge", "listen", "a process merges saved reports or collects streams, not both"},
	{"merge", "collect", "a merge has no producer to ship events from"},
	{"daemon", "merge", "the daemon serves live fleet reports; -merge folds saved ones"},
	{"v", "quiet", "pick one verbosity"},
}

// requires lists flags that only make sense alongside another flag.
var requires = []flagConflict{
	{"spill-dir", "collect", "the spill WAL absorbs events while a -collect link is down"},
	{"daemon", "listen", "the daemon is the long-lived collector side"},
	{"checkpoint-dir", "daemon", "checkpoints are the daemon's restart state"},
	{"window-events", "daemon", "analysis windows are per-tenant daemon state"},
	{"quotas", "daemon", "quotas guard the daemon's tenants"},
	{"tenant", "collect", "the tenant identity travels in the producer's hello frame"},
	{"min-confidence", "sample", "confidence bounds exist only under sampling"},
}

// validate applies the conflict and requirement tables, returning a one-line
// error for the first violation.
func (o *options) validate() error {
	for _, c := range conflicts {
		if o.isSet(c.a) && o.isSet(c.b) {
			return fmt.Errorf("-%s and -%s are incompatible: %s", c.a, c.b, c.reason)
		}
	}
	for _, r := range requires {
		if o.isSet(r.a) && !o.isSet(r.b) {
			return fmt.Errorf("-%s requires -%s: %s", r.a, r.b, r.reason)
		}
	}
	if o.merge && len(o.mergeFiles) == 0 {
		return fmt.Errorf("-merge needs at least one report snapshot argument")
	}
	if o.quotas != "" {
		if _, err := parseQuotas(o.quotas); err != nil {
			return err
		}
	}
	if o.sampleMode != "" {
		cfg, err := sample.ParseConfig(o.sampleMode)
		if err != nil {
			return err
		}
		o.sampleCfg = cfg
	}
	if o.minConf < 0 || o.minConf > 1 {
		return fmt.Errorf("-min-confidence must be in [0,1], got %g", o.minConf)
	}
	return nil
}
