package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dsspy/internal/core"
	"dsspy/internal/obs"
	"dsspy/internal/sample"
	"dsspy/internal/trace"
)

// TestObservabilityPlaneSmoke drives a small streaming run the way main does
// — tracer, sampled collector, timed recorder, live HTTP surface — and checks
// every endpoint plus the exported Chrome trace.
func TestObservabilityPlaneSmoke(t *testing.T) {
	o := &options{httpAddr: "127.0.0.1:0", traceOut: filepath.Join(t.TempDir(), "run.trace.json")}
	tracer := newTracer(o)
	if tracer == nil {
		t.Fatal("tracer should be on when -http or -trace-out is set")
	}

	srv := obs.NewServer()
	srv.AddSource(tracer)
	addr, err := srv.Start(o.httpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	analyzer := core.NewWith(core.Config{Tracer: tracer})
	sa := analyzer.NewStreamAnalyzer(1)
	scol := sa.Collector(trace.DefaultAsyncBuffer, trace.Block(), false)
	scol.SetTracer(tracer)
	scol.EnableQueueSampling(time.Millisecond)
	timed := trace.NewTimedRecorder(scol, 4)
	ctrl := sample.NewController(sample.Config{Mode: sample.ModeStatic, StaticRate: 4, Burst: 8})
	ctrl.SetTracer(tracer)
	sa.SetSampling(ctrl)
	s := trace.NewSessionWith(trace.Options{Recorder: timed, CaptureSites: true, Gate: ctrl})
	sa.Attach(s)
	srv.AddSource(scol)
	srv.AddSource(sa)
	srv.AddSource(timed)
	srv.AddSource(s)
	srv.AddSource(ctrl)
	start := time.Now()
	srv.SetStatus(func() *obs.Status { return streamStatus("smoke", start, s, sa, scol, ctrl) })

	_, workload := pickWorkload("", "figure3")
	sp := tracer.Begin("workload", "run")
	t0 := time.Now()
	workload(s)
	wall := time.Since(t0)
	sp.End()
	scol.Close()
	rep := sa.Close()
	cs := scol.Stats()
	rep.Stats.Collector = &cs
	rep.Stats.Overhead = overheadStats(timed, wall, 0)

	if rep.Stats.Overhead.Events == 0 || rep.Stats.Overhead.Sampled == 0 {
		t.Fatalf("overhead accounting empty: %+v", rep.Stats.Overhead)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b strings.Builder
		buf := make([]byte, 32<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("healthz = %q", got)
	}
	metricsBody := get("/metrics")
	for _, want := range []string{
		"dsspy_collector_events_total", "dsspy_stream_folded_total",
		"dsspy_record_calls_total", "dsspy_trace_spans_total",
		"dsspy_contention_instances", "dsspy_contention_contended_instances",
		"dsspy_contention_episodes_total", "dsspy_contention_episode_events_total",
		"dsspy_sample_instances", "dsspy_sample_observed_total",
		"dsspy_sample_folded_total", "dsspy_sample_dropped_total",
		"dsspy_sample_rate", "dsspy_sample_max_bound",
		"dsspy_aggregate_flushes_total", "dsspy_aggregate_events_total",
		"dsspy_sample_aggregated_total",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	statusBody := get("/statusz?frag=1")
	for _, want := range []string{"smoke", "events folded", "aggregate flushes", "Collector shards", "Sampling (static"} {
		if !strings.Contains(statusBody, want) {
			t.Errorf("/statusz missing %q", want)
		}
	}

	exportTrace(o, tracer)
	raw, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"workload", "drain", "finalize"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

// TestListenStatus covers the collector-side status page model.
func TestListenStatus(t *testing.T) {
	cs, err := trace.ListenCollectorOpts("tcp", "127.0.0.1:0", trace.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	st := listenStatus("127.0.0.1:0", time.Now(), cs)
	if len(st.Sections) != 2 {
		t.Fatalf("want 2 sections, got %d", len(st.Sections))
	}
	if st.Sections[0].Title != "Server" {
		t.Fatalf("first section = %q", st.Sections[0].Title)
	}
}
