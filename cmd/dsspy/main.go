// Command dsspy runs one of the evaluation programs (or a demo workload)
// under instrumentation and prints the DSspy report: detected use cases with
// evidence, recommended actions, and optional profile charts.
//
// Usage:
//
//	dsspy -list
//	dsspy -app Gpdotnet [-chart] [-svg out.svg] [-html report.html]
//	dsspy -app Mandelbrot -advise -cores 8
//	dsspy -demo figure3 [-chart] [-log run.dslog]
//	dsspy -app Mandelbrot -stream -live 500ms
//	dsspy -app Mandelbrot -stream -http 127.0.0.1:6060 -trace-out run.trace.json
//	dsspy -replay run.dslog
//	dsspy -recover crashed.dslog -stream
//	dsspy -listen 127.0.0.1:7777 -conns 1 -stats
//	dsspy -app Algorithmia -collect 127.0.0.1:7777 -spill-dir /var/tmp/dsspy
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dsspy/internal/advisor"
	"dsspy/internal/apps"
	"dsspy/internal/core"
	"dsspy/internal/dstruct"
	"dsspy/internal/obs"
	"dsspy/internal/sample"
	"dsspy/internal/trace"
	"dsspy/internal/viz"
)

// observableCollector is the in-process collector surface the CLI wires into
// the observability plane. Both *trace.ShardedCollector and
// *trace.AsyncCollector satisfy it.
type observableCollector interface {
	trace.Collector
	SetTracer(*obs.Tracer)
	EnableQueueSampling(time.Duration)
	WriteMetrics(*obs.PromWriter)
}

func main() {
	o, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2) // parseFlags already printed the one-line reason
	}
	slog.SetDefault(newLogger(o))

	if o.listApps {
		fmt.Println("Evaluation programs (-app):")
		for _, a := range apps.All() {
			// Apps with an uninstrumented twin support the sampled-overhead
			// methodology end to end, so -sample runs can be validated on them.
			mark := ""
			if a.PlainTwin != nil {
				mark = " [sample-ok]"
			}
			if a.PaperLOC > 0 {
				fmt.Printf("  %-16s %s (paper: %d LOC)%s\n", a.Name, a.Domain, a.PaperLOC, mark)
			} else {
				fmt.Printf("  %-16s %s (concurrency study)%s\n", a.Name, a.Domain, mark)
			}
		}
		fmt.Println("Demos (-demo): figure2, figure3, queue, stack")
		return
	}

	policy, err := trace.ParseOverloadPolicy(o.overload)
	if err != nil {
		fatal(err)
	}

	tracer := newTracer(o)
	srv := startObsServer(o, tracer)
	sampling := o.stats || srv != nil

	// The adaptive-sampling controller: nil in full-fidelity mode, so the
	// default path installs no gate and reports stay byte-identical.
	var ctrl *sample.Controller
	if o.sampleCfg.Mode != sample.ModeFull {
		ctrl = sample.NewController(o.sampleCfg)
		ctrl.SetTracer(tracer)
	}

	cfg := core.DefaultConfig()
	cfg.Workers = o.workers
	cfg.Tracer = tracer
	analyzer := core.NewWith(cfg)

	if o.merge {
		runMerge(o)
		return
	}

	if o.listen != "" {
		if o.daemon {
			runDaemon(analyzer, o, tracer, srv, sampling)
		} else {
			runListen(analyzer, o, tracer, srv, sampling)
		}
		exportTrace(o, tracer)
		stopObsServer(srv)
		return
	}

	var (
		s         *trace.Session
		evs       []trace.Event
		cols      []*trace.ColumnBatch // columnar replay runs (streaming mode)
		col       trace.Collector      // set when events are collected in-process
		resilient *trace.ResilientRecorder
		rep       *core.Report // set early by the streaming paths
		timed     *trace.TimedRecorder
		wall      time.Duration // instrumented workload wall time
		plainWall time.Duration // uninstrumented twin wall time (with -stats)
	)
	switch {
	case o.replay != "":
		var err error
		if o.stream {
			// Streaming replay goes columnar: v3 frames reach the reducers
			// without ever inflating []Event.
			s, cols, err = trace.LoadSessionColumns(o.replay)
			if err != nil {
				fatal(err)
			}
			n := 0
			for _, b := range cols {
				n += b.Len()
			}
			fmt.Printf("replaying %s: %d instances, %d events\n\n", o.replay, s.NumInstances(), n)
			break
		}
		s, evs, err = trace.LoadSessionLog(o.replay)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replaying %s: %d instances, %d events\n\n", o.replay, s.NumInstances(), len(evs))
	case o.recoverPath != "":
		var rec *trace.Recovery
		var err error
		if o.stream {
			s, cols, rec, err = trace.RecoverSessionColumns(o.recoverPath)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("recovering %s: %s\n\n", o.recoverPath, rec)
			break
		}
		s, evs, rec, err = trace.RecoverSessionLog(o.recoverPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recovering %s: %s\n\n", o.recoverPath, rec)
	default:
		app, workload := pickWorkload(o.appName, o.demo)
		if workload == nil {
			fmt.Fprintln(os.Stderr, "nothing to run: pass -app <name>, -demo <name>, -replay <file>, -recover <file>, -listen <addr>, or -list")
			os.Exit(2)
		}
		runWorkload := func(s *trace.Session) {
			sp := tracer.Begin("workload", "run")
			t0 := time.Now()
			// The -app/-demo workloads are single-goroutine by construction,
			// so route their per-event Emit calls through a bound batched
			// producer: thread id cached once, sequence numbers reserved in
			// blocks, events delivered 64 at a time.
			p := s.BindDefault()
			workload(s)
			p.Close()
			wall = time.Since(t0)
			sp.End("workload", runLabel(o))
		}

		if o.stream && o.collect == "" {
			// Streaming mode: the collector's drain goroutines feed the
			// analyzer's reducers directly; the event stores stay empty
			// unless -log asks for a replayable session log.
			sa := analyzer.NewStreamAnalyzer(o.shards)
			scol := sa.Collector(trace.DefaultAsyncBuffer, policy, o.logPath != "")
			scol.SetTracer(tracer)
			if sampling {
				scol.EnableQueueSampling(0)
			}
			col = scol
			timed = trace.NewTimedRecorder(scol, 0)
			sessOpts := trace.Options{Recorder: timed, CaptureSites: true}
			if ctrl != nil {
				sessOpts.Gate = ctrl
				sa.SetSampling(ctrl)
			}
			s = trace.NewSessionWith(sessOpts)
			sa.Attach(s)
			if srv != nil {
				srv.AddSource(scol)
				srv.AddSource(sa)
				srv.AddSource(timed)
				srv.AddSource(s) // dsspy_batch_* (producer batching effectiveness)
				if ctrl != nil {
					srv.AddSource(ctrl) // dsspy_sample_* (gate and per-instance bounds)
				}
				label, start := runLabel(o), time.Now()
				srv.SetStatus(func() *obs.Status { return streamStatus(label, start, s, sa, scol, ctrl) })
			}

			stop := make(chan struct{})
			ticked := make(chan struct{})
			if o.live > 0 {
				go func() {
					defer close(ticked)
					t := time.NewTicker(o.live)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case <-t.C:
							printLive(sa.Snapshot())
						}
					}
				}()
			} else {
				close(ticked)
			}
			runWorkload(s)
			scol.Close()
			if o.live > 0 {
				close(stop)
				<-ticked
			}
			rep = sa.Close()
			cs := scol.Stats()
			rep.Stats.Collector = &cs
		} else if o.collect != "" {
			var err error
			resilient, err = trace.NewResilientRecorder(trace.ResilientOptions{
				Network:        "tcp",
				Addr:           o.collect,
				SpillDir:       o.spillDir,
				WriteTimeout:   o.connTO,
				Logger:         slog.Default(),
				Tracer:         tracer,
				SampleInterval: sampleInterval(sampling),
				Hello:          producerHello(o),
			})
			if err != nil {
				fatal(err)
			}
			// Keep a local copy for the report; the remote collector gets
			// the same stream.
			mem := trace.NewMemRecorder()
			timed = trace.NewTimedRecorder(trace.TeeRecorder{resilient, mem}, 0)
			s = trace.NewSessionWith(trace.Options{Recorder: timed, CaptureSites: true})
			if srv != nil {
				srv.AddSource(resilient)
				srv.AddSource(timed)
				srv.AddSource(s)
			}
			runWorkload(s)
			evs = mem.Events()
			if err := resilient.FinishSession(s); err != nil {
				slog.Warn("collector link failed; report uses the local copy", "err", err)
			}
		} else {
			var ocol observableCollector
			if o.shards == 1 {
				ocol = trace.NewAsyncCollectorOpts(trace.DefaultAsyncBuffer, policy)
			} else {
				ocol = trace.NewShardedCollectorOpts(o.shards, trace.DefaultAsyncBuffer, policy)
			}
			ocol.SetTracer(tracer)
			if sampling {
				ocol.EnableQueueSampling(0)
			}
			col = ocol
			timed = trace.NewTimedRecorder(ocol, 0)
			s = trace.NewSessionWith(trace.Options{Recorder: timed, CaptureSites: true})
			if srv != nil {
				srv.AddSource(ocol)
				srv.AddSource(timed)
				srv.AddSource(s)
			}
			runWorkload(s)
			ocol.Close()
		}
		if o.stats && app != nil && app.PlainTwin != nil {
			// Paper §V baseline: the same workload at the same input size on
			// raw containers, timed without any instrumentation in the path.
			slog.Debug("timing uninstrumented twin for the overhead baseline", "app", app.Name)
			t0 := time.Now()
			app.PlainTwin()
			plainWall = time.Since(t0)
		}
		if o.logPath != "" {
			if mc, ok := col.(interface{ MergedColumns() *trace.ColumnBatch }); ok && mc.MergedColumns() != nil {
				// The collector already merged into columns; encode them to v3
				// frames directly without inflating an []Event copy.
				cb := mc.MergedColumns()
				if err := trace.SaveSessionColumns(o.logPath, s, cb); err != nil {
					fatal(err)
				}
				fmt.Printf("session log written to %s (%d events) — re-analyze with -replay\n\n", o.logPath, cb.Len())
			} else {
				if col != nil {
					evs = col.Events()
				}
				if err := trace.SaveSessionLog(o.logPath, s, evs); err != nil {
					fatal(err)
				}
				fmt.Printf("session log written to %s (%d events) — re-analyze with -replay\n\n", o.logPath, len(evs))
			}
		}
	}

	if rep == nil {
		if o.stream {
			// Replay / recovery through the streaming analyzer: feed the
			// salvaged or logged stream into the reducers — as column batches
			// when the loader produced them (v3 logs reach the reducers
			// without ever inflating an []Event).
			sa := analyzer.NewStreamAnalyzer(o.shards)
			sa.Attach(s)
			if cols != nil {
				for _, b := range cols {
					sa.FeedColumns(b)
				}
			} else {
				sa.Feed(evs...)
			}
			rep = sa.Close()
		} else if col != nil {
			rep = analyzer.AnalyzeCollector(s, col)
		} else {
			rep = analyzer.Analyze(s, evs)
		}
	}
	if timed != nil && rep.Stats != nil {
		rep.Stats.Overhead = overheadStats(timed, wall, plainWall)
	}
	if o.minConf > 0 {
		if dropped := rep.FilterMinConfidence(o.minConf); dropped > 0 {
			fmt.Printf("suppressed %d finding(s) below confidence %.2f\n\n", dropped, o.minConf)
		}
	}

	rsp := tracer.Begin("report", "run")
	err = rep.Write(os.Stdout)
	rsp.End()
	if err != nil {
		fatal(err)
	}
	if o.saveReport != "" {
		if rep.Origin == "" {
			rep.Origin = runLabel(o)
		}
		if err := core.SaveReportFile(o.saveReport, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("\nreport snapshot written to %s — combine shards with dsspy -merge\n", o.saveReport)
	}
	if o.stats {
		fmt.Println()
		if err := rep.Stats.Write(os.Stdout); err != nil {
			fatal(err)
		}
		if resilient != nil {
			if err := resilient.Stats().Write(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}

	if o.advise {
		fmt.Println("\nTransformation plans (ranked by Amdahl estimate):")
		if err := advisor.Write(os.Stdout, advisor.Advise(rep, o.cores), o.cores); err != nil {
			fatal(err)
		}
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nJSON findings written to %s\n", o.jsonPath)
	}
	if o.htmlPath != "" {
		f, err := os.Create(o.htmlPath)
		if err != nil {
			fatal(err)
		}
		title := "DSspy report"
		if o.appName != "" {
			title = "DSspy report — " + o.appName
		} else if o.demo != "" {
			title = "DSspy report — demo " + o.demo
		}
		if err := viz.WriteHTMLReport(f, rep, viz.HTMLOptions{Title: title}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nHTML report written to %s\n", o.htmlPath)
	}

	if o.stream && (o.chart || o.svgPath != "") {
		slog.Warn("-chart and -svg need the retained event trace; streaming mode folds events instead of keeping them — run without -stream for charts")
		o.chart = false
		o.svgPath = ""
	}
	if o.chart {
		for _, ir := range rep.Instances {
			if len(ir.UseCases) == 0 {
				continue
			}
			fmt.Printf("\nProfile of %s %q (%d events):\n",
				ir.Profile.Instance.TypeName, ir.Profile.Instance.Label, ir.Profile.Len())
			fmt.Print(viz.ASCIIChart(ir.Profile.Events, viz.DefaultChartOptions()))
		}
	}
	if o.svgPath != "" {
		for _, ir := range rep.Instances {
			if len(ir.UseCases) == 0 {
				continue
			}
			f, err := os.Create(o.svgPath)
			if err != nil {
				fatal(err)
			}
			if err := viz.WriteSVG(f, ir.Profile.Events, 1000, 320); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("\nSVG profile written to %s\n", o.svgPath)
			break
		}
	}

	exportTrace(o, tracer)
	stopObsServer(srv)
}

// runListen is the collector side of a cross-process run: accept producer
// streams, wait for the expected number to finish (complete or salvaged),
// rebuild the replay session from the shipped registry frames, and analyze.
func runListen(analyzer *core.DSspy, o *options, tracer *obs.Tracer, srv *obs.Server, sampling bool) {
	cs, err := trace.ListenCollectorOpts("tcp", o.listen, trace.ServerOptions{
		ConnTimeout:    o.connTO,
		Logger:         slog.Default(),
		Tracer:         tracer,
		SampleInterval: sampleInterval(sampling),
	})
	if err != nil {
		fatal(err)
	}
	if srv != nil {
		srv.AddSource(cs)
		start := time.Now()
		srv.SetStatus(func() *obs.Status { return listenStatus(o.listen, start, cs) })
	}
	fmt.Printf("collecting on %s, waiting for %d producer stream(s)...\n", cs.Addr(), o.conns)

	// SIGTERM/SIGINT while collecting: a bounded drain, not an abort. The
	// listener closes immediately, in-flight streams get -drain-timeout to
	// finish, stragglers are cut — and everything decoded up to the cut is
	// salvaged into the analysis below.
	done := make(chan struct{})
	go func() {
		cs.WaitStreams(o.conns)
		close(done)
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-done:
		signal.Stop(sig)
		if err := cs.Close(); err != nil {
			fatal(err)
		}
	case s := <-sig:
		signal.Stop(sig)
		fmt.Printf("\n%s: draining in-flight streams (up to %s)...\n", s, o.drainTO)
		cut, err := cs.Drain(o.drainTO)
		if err != nil {
			slog.Warn("drain finished with errors", "err", err)
		}
		if cut > 0 {
			fmt.Printf("drain timeout: cut %d still-open stream(s); events decoded before the cut are kept\n", cut)
		}
	}

	s := cs.Session()
	evs := cs.Events()
	fmt.Printf("received %d events\n\n", len(evs))
	if o.logPath != "" {
		if err := trace.SaveSessionLog(o.logPath, s, evs); err != nil {
			fatal(err)
		}
		fmt.Printf("session log written to %s — re-analyze with -replay\n\n", o.logPath)
	}

	rep := analyzer.Analyze(s, evs)
	rsp := tracer.Begin("report", "run")
	err = rep.Write(os.Stdout)
	rsp.End()
	if err != nil {
		fatal(err)
	}
	if o.saveReport != "" {
		rep.Origin = o.listen
		if err := core.SaveReportFile(o.saveReport, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("\nreport snapshot written to %s — combine shards with dsspy -merge\n", o.saveReport)
	}
	if o.stats {
		fmt.Println()
		if err := cs.ServerStats().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// stopObsServer shuts the -http surface down, nil-safe.
func stopObsServer(srv *obs.Server) {
	if srv != nil {
		srv.Stop()
	}
}

// pickWorkload resolves -app/-demo into the instrumented workload. The app is
// returned too (nil for demos) so -stats can time its uninstrumented twin.
func pickWorkload(appName, demo string) (*apps.App, func(*trace.Session)) {
	if appName != "" {
		app := apps.ByName(appName)
		if app == nil {
			// Forgiving lookup.
			for _, a := range apps.All() {
				if strings.EqualFold(a.Name, appName) {
					app = a
					break
				}
			}
		}
		if app == nil {
			fmt.Fprintf(os.Stderr, "unknown app %q (try -list)\n", appName)
			os.Exit(2)
		}
		return app, app.Instrumented
	}
	switch demo {
	case "figure2":
		return nil, func(s *trace.Session) {
			l := dstruct.NewListCap[int](s, 10)
			for i := 0; i < 10; i++ {
				l.Add(i)
			}
			for i := 9; i >= 0; i-- {
				l.Get(i)
			}
		}
	case "figure3":
		return nil, func(s *trace.Session) {
			l := dstruct.NewListLabeled[int](s, "producer/scanner")
			for c := 0; c < 12; c++ {
				for i := 0; i < 150; i++ {
					l.Add(i)
				}
				for i := 0; i < l.Len(); i++ {
					l.Get(i)
				}
				l.Clear()
			}
		}
	case "queue":
		return nil, func(s *trace.Session) {
			l := dstruct.NewListLabeled[int](s, "hand-rolled FIFO")
			for c := 0; c < 20; c++ {
				for i := 0; i < 10; i++ {
					l.Add(i)
				}
				for i := 0; i < 10; i++ {
					l.RemoveAt(0)
				}
			}
		}
	case "stack":
		return nil, func(s *trace.Session) {
			l := dstruct.NewListLabeled[int](s, "hand-rolled LIFO")
			for c := 0; c < 20; c++ {
				for i := 0; i < 10; i++ {
					l.Add(i)
				}
				for i := 0; i < 10; i++ {
					l.RemoveAt(l.Len() - 1)
				}
			}
		}
	case "":
		return nil, nil
	default:
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", demo)
		os.Exit(2)
		return nil, nil
	}
}

// printLive renders one -live snapshot: a compact per-instance table over
// everything folded so far, largest profiles first.
func printLive(rep *core.Report) {
	ss := rep.Stats.Streaming
	fmt.Printf("-- live %s: %d events folded, %d instance(s), %d open run(s) --\n",
		time.Now().Format("15:04:05"), ss.Folded, ss.Instances, ss.OpenRuns)
	instances := make([]*core.InstanceResult, len(rep.Instances))
	copy(instances, rep.Instances)
	sort.Slice(instances, func(i, j int) bool { return instances[i].Profile.Len() > instances[j].Profile.Len() })
	const maxRows = 10
	fmt.Printf("   %-8s %-22s %10s %9s  %s\n", "kind", "instance", "events", "patterns", "use cases")
	for i, ir := range instances {
		if i == maxRows {
			fmt.Printf("   ... %d more instance(s)\n", len(instances)-maxRows)
			break
		}
		inst := ir.Profile.Instance
		name := inst.TypeName
		if inst.Label != "" {
			name += " " + inst.Label
		}
		if len(name) > 22 {
			name = name[:21] + "…"
		}
		var shorts []string
		for _, u := range ir.UseCases {
			shorts = append(shorts, u.Kind.Short())
		}
		fmt.Printf("   %-8s %-22s %10d %9d  %s\n",
			inst.Kind, name, ir.Profile.Len(), len(ir.Patterns()), strings.Join(shorts, ","))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsspy:", err)
	os.Exit(1)
}
