// Command dsspy runs one of the evaluation programs (or a demo workload)
// under instrumentation and prints the DSspy report: detected use cases with
// evidence, recommended actions, and optional profile charts.
//
// Usage:
//
//	dsspy -list
//	dsspy -app Gpdotnet [-chart] [-svg out.svg] [-html report.html]
//	dsspy -app Mandelbrot -advise -cores 8
//	dsspy -demo figure3 [-chart] [-log run.dslog]
//	dsspy -app Mandelbrot -stream -live 500ms
//	dsspy -replay run.dslog
//	dsspy -recover crashed.dslog -stream
//	dsspy -listen 127.0.0.1:7777 -conns 1 -stats
//	dsspy -app Algorithmia -collect 127.0.0.1:7777 -spill-dir /var/tmp/dsspy
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dsspy/internal/advisor"
	"dsspy/internal/apps"
	"dsspy/internal/core"
	"dsspy/internal/dstruct"
	"dsspy/internal/trace"
	"dsspy/internal/viz"
)

func main() {
	var (
		listApps = flag.Bool("list", false, "list available programs and demos")
		appName  = flag.String("app", "", "evaluation program to profile")
		demo     = flag.String("demo", "", "demo workload: figure2, figure3, queue, stack")
		chart    = flag.Bool("chart", false, "print an ASCII profile chart per instance with findings")
		svgPath  = flag.String("svg", "", "write an SVG profile chart of the first flagged instance")
		htmlPath = flag.String("html", "", "write a self-contained HTML report")
		jsonPath = flag.String("json", "", "write the findings as JSON")
		advise   = flag.Bool("advise", false, "print ranked transformation plans with Amdahl estimates")
		cores    = flag.Int("cores", 8, "core count for the advisor's Amdahl estimates")
		logPath  = flag.String("log", "", "save the session (registry + events) to this file for -replay")
		replay   = flag.String("replay", "", "re-analyze a session log written with -log instead of running a workload")
		recover_ = flag.String("recover", "", "salvage a damaged or truncated session log and analyze what was recovered")
		collect  = flag.String("collect", "", "ship events to a collector at host:port instead of in-process")
		spillDir = flag.String("spill-dir", "", "with -collect: spill events to a WAL in this directory while the collector is unreachable")
		listen   = flag.String("listen", "", "run as the collector: accept producer streams on host:port and analyze them")
		conns    = flag.Int("conns", 1, "with -listen: number of producer streams to wait for before analyzing")
		connTO   = flag.Duration("conn-timeout", 0, "with -listen: per-frame read deadline on producer connections (0 = none); with -collect: write deadline per batch")
		overload = flag.String("overload", "block", "in-process overload policy: block (lossless), drop, or sample:N")
		stream   = flag.Bool("stream", false, "analyze incrementally while the workload runs (bounded memory; events are not retained unless -log asks for them)")
		live     = flag.Duration("live", 0, "print a live snapshot table at this interval while streaming (implies -stream)")
		stats    = flag.Bool("stats", false, "print pipeline observability: per-stage timings, per-shard queue statistics, and delivery accounting")
		shards   = flag.Int("shards", 0, "collector shards (events partitioned by instance); 0 = GOMAXPROCS, 1 = the single-channel async collector")
		workers  = flag.Int("workers", 0, "analysis worker-pool size; 0 = GOMAXPROCS, 1 = sequential")
	)
	flag.Parse()

	if *listApps {
		fmt.Println("Evaluation programs (-app):")
		for _, a := range apps.Apps() {
			fmt.Printf("  %-16s %s (paper: %d LOC)\n", a.Name, a.Domain, a.PaperLOC)
		}
		fmt.Println("Demos (-demo): figure2, figure3, queue, stack")
		return
	}

	policy, err := trace.ParseOverloadPolicy(*overload)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	analyzer := core.NewWith(cfg)

	if *listen != "" {
		runListen(analyzer, *listen, *conns, *connTO, *stats, *logPath)
		return
	}

	if *live > 0 {
		*stream = true
	}

	var s *trace.Session
	var evs []trace.Event
	var col trace.Collector // set when events are collected in-process
	var resilient *trace.ResilientRecorder
	var rep *core.Report // set early by the streaming paths
	switch {
	case *replay != "":
		var err error
		s, evs, err = trace.LoadSessionLog(*replay)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replaying %s: %d instances, %d events\n\n", *replay, s.NumInstances(), len(evs))
	case *recover_ != "":
		var rec *trace.Recovery
		var err error
		s, evs, rec, err = trace.RecoverSessionLog(*recover_)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recovering %s: %s\n\n", *recover_, rec)
	default:
		workload := pickWorkload(*appName, *demo)
		if workload == nil {
			fmt.Fprintln(os.Stderr, "nothing to run: pass -app <name>, -demo <name>, -replay <file>, -recover <file>, -listen <addr>, or -list")
			os.Exit(2)
		}

		if *stream && *collect == "" {
			// Streaming mode: the collector's drain goroutines feed the
			// analyzer's reducers directly; the event stores stay empty
			// unless -log asks for a replayable session log.
			sa := analyzer.NewStreamAnalyzer(*shards)
			scol := sa.Collector(trace.DefaultAsyncBuffer, policy, *logPath != "")
			col = scol
			s = trace.NewSessionWith(trace.Options{Recorder: scol, CaptureSites: true})
			sa.Attach(s)

			stop := make(chan struct{})
			ticked := make(chan struct{})
			if *live > 0 {
				go func() {
					defer close(ticked)
					t := time.NewTicker(*live)
					defer t.Stop()
					for {
						select {
						case <-stop:
							return
						case <-t.C:
							printLive(sa.Snapshot())
						}
					}
				}()
			} else {
				close(ticked)
			}
			workload(s)
			scol.Close()
			if *live > 0 {
				close(stop)
				<-ticked
			}
			rep = sa.Close()
			cs := scol.Stats()
			rep.Stats.Collector = &cs
		} else if *collect != "" {
			var err error
			resilient, err = trace.NewResilientRecorder(trace.ResilientOptions{
				Network:      "tcp",
				Addr:         *collect,
				SpillDir:     *spillDir,
				WriteTimeout: *connTO,
			})
			if err != nil {
				fatal(err)
			}
			// Keep a local copy for the report; the remote collector gets
			// the same stream.
			mem := trace.NewMemRecorder()
			rec := trace.TeeRecorder{resilient, mem}
			s = trace.NewSessionWith(trace.Options{Recorder: rec, CaptureSites: true})
			workload(s)
			evs = mem.Events()
			if err := resilient.FinishSession(s); err != nil {
				fmt.Fprintln(os.Stderr, "dsspy: collector link:", err)
			}
		} else {
			if *shards == 1 {
				col = trace.NewAsyncCollectorOpts(trace.DefaultAsyncBuffer, policy)
			} else {
				col = trace.NewShardedCollectorOpts(*shards, trace.DefaultAsyncBuffer, policy)
			}
			s = trace.NewSessionWith(trace.Options{Recorder: col, CaptureSites: true})
			workload(s)
			col.Close()
		}
		if *logPath != "" {
			if col != nil {
				evs = col.Events()
			}
			if err := trace.SaveSessionLog(*logPath, s, evs); err != nil {
				fatal(err)
			}
			fmt.Printf("session log written to %s (%d events) — re-analyze with -replay\n\n", *logPath, len(evs))
		}
	}

	if rep == nil {
		if *stream {
			// Replay / recovery through the streaming analyzer: feed the
			// salvaged or logged stream into the reducers.
			sa := analyzer.NewStreamAnalyzer(*shards)
			sa.Attach(s)
			sa.Feed(evs...)
			rep = sa.Close()
		} else if col != nil {
			rep = analyzer.AnalyzeCollector(s, col)
		} else {
			rep = analyzer.Analyze(s, evs)
		}
	}
	if err := rep.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Println()
		if err := rep.Stats.Write(os.Stdout); err != nil {
			fatal(err)
		}
		if resilient != nil {
			if err := resilient.Stats().Write(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}

	if *advise {
		fmt.Println("\nTransformation plans (ranked by Amdahl estimate):")
		if err := advisor.Write(os.Stdout, advisor.Advise(rep, *cores), *cores); err != nil {
			fatal(err)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nJSON findings written to %s\n", *jsonPath)
	}
	if *htmlPath != "" {
		f, err := os.Create(*htmlPath)
		if err != nil {
			fatal(err)
		}
		title := "DSspy report"
		if *appName != "" {
			title = "DSspy report — " + *appName
		} else if *demo != "" {
			title = "DSspy report — demo " + *demo
		}
		if err := viz.WriteHTMLReport(f, rep, viz.HTMLOptions{Title: title}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nHTML report written to %s\n", *htmlPath)
	}

	if *stream && (*chart || *svgPath != "") {
		fmt.Fprintln(os.Stderr, "dsspy: -chart and -svg need the retained event trace; streaming mode folds events instead of keeping them — run without -stream for charts")
		*chart = false
		*svgPath = ""
	}
	if *chart {
		for _, ir := range rep.Instances {
			if len(ir.UseCases) == 0 {
				continue
			}
			fmt.Printf("\nProfile of %s %q (%d events):\n",
				ir.Profile.Instance.TypeName, ir.Profile.Instance.Label, ir.Profile.Len())
			fmt.Print(viz.ASCIIChart(ir.Profile.Events, viz.DefaultChartOptions()))
		}
	}
	if *svgPath != "" {
		for _, ir := range rep.Instances {
			if len(ir.UseCases) == 0 {
				continue
			}
			f, err := os.Create(*svgPath)
			if err != nil {
				fatal(err)
			}
			if err := viz.WriteSVG(f, ir.Profile.Events, 1000, 320); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("\nSVG profile written to %s\n", *svgPath)
			break
		}
	}
}

// runListen is the collector side of a cross-process run: accept producer
// streams, wait for the expected number to finish (complete or salvaged),
// rebuild the replay session from the shipped registry frames, and analyze.
func runListen(analyzer *core.DSspy, addr string, conns int, connTimeout time.Duration, stats bool, logPath string) {
	cs, err := trace.ListenCollectorOpts("tcp", addr, trace.ServerOptions{ConnTimeout: connTimeout})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("collecting on %s, waiting for %d producer stream(s)...\n", cs.Addr(), conns)
	cs.WaitStreams(conns)
	if err := cs.Close(); err != nil {
		fatal(err)
	}

	s := cs.Session()
	evs := cs.Events()
	fmt.Printf("received %d events from %d stream(s)\n\n", len(evs), conns)
	if logPath != "" {
		if err := trace.SaveSessionLog(logPath, s, evs); err != nil {
			fatal(err)
		}
		fmt.Printf("session log written to %s — re-analyze with -replay\n\n", logPath)
	}

	rep := analyzer.Analyze(s, evs)
	if err := rep.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if stats {
		fmt.Println()
		if err := cs.ServerStats().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func pickWorkload(appName, demo string) func(*trace.Session) {
	if appName != "" {
		app := apps.ByName(appName)
		if app == nil {
			// Forgiving lookup.
			for _, a := range apps.Apps() {
				if strings.EqualFold(a.Name, appName) {
					app = a
					break
				}
			}
		}
		if app == nil {
			fmt.Fprintf(os.Stderr, "unknown app %q (try -list)\n", appName)
			os.Exit(2)
		}
		return app.Instrumented
	}
	switch demo {
	case "figure2":
		return func(s *trace.Session) {
			l := dstruct.NewListCap[int](s, 10)
			for i := 0; i < 10; i++ {
				l.Add(i)
			}
			for i := 9; i >= 0; i-- {
				l.Get(i)
			}
		}
	case "figure3":
		return func(s *trace.Session) {
			l := dstruct.NewListLabeled[int](s, "producer/scanner")
			for c := 0; c < 12; c++ {
				for i := 0; i < 150; i++ {
					l.Add(i)
				}
				for i := 0; i < l.Len(); i++ {
					l.Get(i)
				}
				l.Clear()
			}
		}
	case "queue":
		return func(s *trace.Session) {
			l := dstruct.NewListLabeled[int](s, "hand-rolled FIFO")
			for c := 0; c < 20; c++ {
				for i := 0; i < 10; i++ {
					l.Add(i)
				}
				for i := 0; i < 10; i++ {
					l.RemoveAt(0)
				}
			}
		}
	case "stack":
		return func(s *trace.Session) {
			l := dstruct.NewListLabeled[int](s, "hand-rolled LIFO")
			for c := 0; c < 20; c++ {
				for i := 0; i < 10; i++ {
					l.Add(i)
				}
				for i := 0; i < 10; i++ {
					l.RemoveAt(l.Len() - 1)
				}
			}
		}
	case "":
		return nil
	default:
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", demo)
		os.Exit(2)
		return nil
	}
}

// printLive renders one -live snapshot: a compact per-instance table over
// everything folded so far, largest profiles first.
func printLive(rep *core.Report) {
	ss := rep.Stats.Streaming
	fmt.Printf("-- live %s: %d events folded, %d instance(s), %d open run(s) --\n",
		time.Now().Format("15:04:05"), ss.Folded, ss.Instances, ss.OpenRuns)
	instances := make([]*core.InstanceResult, len(rep.Instances))
	copy(instances, rep.Instances)
	sort.Slice(instances, func(i, j int) bool { return instances[i].Profile.Len() > instances[j].Profile.Len() })
	const maxRows = 10
	fmt.Printf("   %-8s %-22s %10s %9s  %s\n", "kind", "instance", "events", "patterns", "use cases")
	for i, ir := range instances {
		if i == maxRows {
			fmt.Printf("   ... %d more instance(s)\n", len(instances)-maxRows)
			break
		}
		inst := ir.Profile.Instance
		name := inst.TypeName
		if inst.Label != "" {
			name += " " + inst.Label
		}
		if len(name) > 22 {
			name = name[:21] + "…"
		}
		var shorts []string
		for _, u := range ir.UseCases {
			shorts = append(shorts, u.Kind.Short())
		}
		fmt.Printf("   %-8s %-22s %10d %9d  %s\n",
			inst.Kind, name, ir.Profile.Len(), len(ir.Patterns()), strings.Join(shorts, ","))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsspy:", err)
	os.Exit(1)
}
