package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dsspy/internal/trace"
)

// parseQuotas turns the -quotas spec into per-tenant quotas. The grammar is
// tenant blocks separated by ';', each "tenant:key=value,key=value":
//
//	alpha:rate=500,conns=2;beta:rate=100,sample=16
//
// Keys: rate (events/sec), burst (bucket size), conns (max concurrent),
// sample (keep 1-in-N when degraded), timeout (per-frame read deadline,
// Go duration), memory (max retained events). A block named "*" (or with no
// tenant name) sets the default quota for tenants not listed.
func parseQuotas(spec string) (*trace.TenancyOptions, error) {
	opts := &trace.TenancyOptions{PerTenant: map[string]trace.TenantQuota{}}
	for _, block := range strings.Split(spec, ";") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		name := "*"
		body := block
		if i := strings.Index(block, ":"); i >= 0 {
			name = strings.TrimSpace(block[:i])
			body = block[i+1:]
			if name == "" {
				name = "*"
			}
		}
		var q trace.TenantQuota
		for _, kv := range strings.Split(body, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("-quotas: %q is not key=value (in block %q)", kv, block)
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			switch key {
			case "rate":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("-quotas: rate %q: %v", val, err)
				}
				q.EventsPerSec = n
			case "burst":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("-quotas: burst %q: %v", val, err)
				}
				q.Burst = n
			case "conns":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("-quotas: conns %q: %v", val, err)
				}
				q.MaxConns = n
			case "sample":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("-quotas: sample %q: %v", val, err)
				}
				q.SampleN = n
			case "timeout":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("-quotas: timeout %q: %v", val, err)
				}
				q.ConnTimeout = d
			case "memory":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("-quotas: memory %q: %v", val, err)
				}
				q.MaxStoredEvents = n
			default:
				return nil, fmt.Errorf("-quotas: unknown key %q (want rate, burst, conns, sample, timeout, memory)", key)
			}
		}
		if name == "*" {
			opts.Default = q
		} else {
			opts.PerTenant[name] = q
		}
	}
	return opts, nil
}
